package lp

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func almostEq(a, b, tol float64) bool { return math.Abs(a-b) <= tol }

func mustSolve(t *testing.T, p *Problem) *Solution {
	t.Helper()
	sol, err := p.Solve()
	if err != nil {
		t.Fatalf("Solve: %v", err)
	}
	return sol
}

func TestSimpleMaximize(t *testing.T) {
	// max 3x + 5y s.t. x <= 4, 2y <= 12, 3x + 2y <= 18  (classic Dantzig)
	// optimum (2, 6) objective 36.
	p := New(2)
	if err := p.SetObjective([]float64{3, 5}, Maximize); err != nil {
		t.Fatal(err)
	}
	p.AddConstraint([]Term{{0, 1}}, LE, 4)
	p.AddConstraint([]Term{{1, 2}}, LE, 12)
	p.AddConstraint([]Term{{0, 3}, {1, 2}}, LE, 18)
	sol := mustSolve(t, p)
	if sol.Status != Optimal {
		t.Fatalf("status = %v, want optimal", sol.Status)
	}
	if !almostEq(sol.Objective, 36, 1e-6) {
		t.Errorf("objective = %g, want 36", sol.Objective)
	}
	if !almostEq(sol.X[0], 2, 1e-6) || !almostEq(sol.X[1], 6, 1e-6) {
		t.Errorf("x = %v, want [2 6]", sol.X)
	}
}

func TestSimpleMinimizeWithGE(t *testing.T) {
	// min 2x + 3y s.t. x + y >= 4, x >= 1 -> optimum (4,0) obj 8.
	p := New(2)
	if err := p.SetObjective([]float64{2, 3}, Minimize); err != nil {
		t.Fatal(err)
	}
	p.AddConstraint([]Term{{0, 1}, {1, 1}}, GE, 4)
	p.AddConstraint([]Term{{0, 1}}, GE, 1)
	sol := mustSolve(t, p)
	if sol.Status != Optimal {
		t.Fatalf("status = %v, want optimal", sol.Status)
	}
	if !almostEq(sol.Objective, 8, 1e-6) {
		t.Errorf("objective = %g, want 8", sol.Objective)
	}
}

func TestEqualityConstraint(t *testing.T) {
	// min x + y s.t. x + 2y == 6, x <= 4 -> (0,3) obj 3.
	p := New(2)
	if err := p.SetObjective([]float64{1, 1}, Minimize); err != nil {
		t.Fatal(err)
	}
	p.AddConstraint([]Term{{0, 1}, {1, 2}}, EQ, 6)
	p.AddConstraint([]Term{{0, 1}}, LE, 4)
	sol := mustSolve(t, p)
	if sol.Status != Optimal {
		t.Fatalf("status = %v, want optimal", sol.Status)
	}
	if !almostEq(sol.Objective, 3, 1e-6) {
		t.Errorf("objective = %g, want 3", sol.Objective)
	}
}

func TestInfeasible(t *testing.T) {
	p := New(1)
	p.AddConstraint([]Term{{0, 1}}, GE, 5)
	p.AddConstraint([]Term{{0, 1}}, LE, 3)
	sol := mustSolve(t, p)
	if sol.Status != Infeasible {
		t.Fatalf("status = %v, want infeasible", sol.Status)
	}
}

func TestUnbounded(t *testing.T) {
	p := New(1)
	if err := p.SetObjective([]float64{1}, Maximize); err != nil {
		t.Fatal(err)
	}
	p.AddConstraint([]Term{{0, 1}}, GE, 0)
	sol := mustSolve(t, p)
	if sol.Status != Unbounded {
		t.Fatalf("status = %v, want unbounded", sol.Status)
	}
}

func TestVariableBounds(t *testing.T) {
	// max x + y with 1 <= x <= 3, 0 <= y <= 2 -> (3,2) obj 5.
	p := New(2)
	if err := p.SetObjective([]float64{1, 1}, Maximize); err != nil {
		t.Fatal(err)
	}
	if err := p.SetBounds(0, 1, 3); err != nil {
		t.Fatal(err)
	}
	if err := p.SetBounds(1, 0, 2); err != nil {
		t.Fatal(err)
	}
	sol := mustSolve(t, p)
	if sol.Status != Optimal {
		t.Fatalf("status = %v, want optimal", sol.Status)
	}
	if !almostEq(sol.Objective, 5, 1e-6) {
		t.Errorf("objective = %g, want 5", sol.Objective)
	}
	if !almostEq(sol.X[0], 3, 1e-6) || !almostEq(sol.X[1], 2, 1e-6) {
		t.Errorf("x = %v, want [3 2]", sol.X)
	}
}

func TestNonZeroLowerBoundShift(t *testing.T) {
	// min x s.t. x >= 0 but bound lo=2 -> x = 2.
	p := New(1)
	if err := p.SetObjective([]float64{1}, Minimize); err != nil {
		t.Fatal(err)
	}
	if err := p.SetBounds(0, 2, 10); err != nil {
		t.Fatal(err)
	}
	sol := mustSolve(t, p)
	if sol.Status != Optimal || !almostEq(sol.X[0], 2, 1e-9) {
		t.Fatalf("got %v x=%v, want optimal x=2", sol.Status, sol.X)
	}
}

func TestNegativeRHS(t *testing.T) {
	// min x+y s.t. -x - y <= -3 (i.e. x+y >= 3) -> obj 3.
	p := New(2)
	if err := p.SetObjective([]float64{1, 1}, Minimize); err != nil {
		t.Fatal(err)
	}
	p.AddConstraint([]Term{{0, -1}, {1, -1}}, LE, -3)
	sol := mustSolve(t, p)
	if sol.Status != Optimal || !almostEq(sol.Objective, 3, 1e-6) {
		t.Fatalf("got %v obj=%g, want optimal obj=3", sol.Status, sol.Objective)
	}
}

func TestDegenerateLP(t *testing.T) {
	// Degenerate problem (Beale's cycling example without Bland would cycle).
	p := New(4)
	if err := p.SetObjective([]float64{-0.75, 150, -0.02, 6}, Minimize); err != nil {
		t.Fatal(err)
	}
	p.AddConstraint([]Term{{0, 0.25}, {1, -60}, {2, -0.04}, {3, 9}}, LE, 0)
	p.AddConstraint([]Term{{0, 0.5}, {1, -90}, {2, -0.02}, {3, 3}}, LE, 0)
	p.AddConstraint([]Term{{2, 1}}, LE, 1)
	sol := mustSolve(t, p)
	if sol.Status != Optimal {
		t.Fatalf("status = %v, want optimal", sol.Status)
	}
	if !almostEq(sol.Objective, -0.05, 1e-6) {
		t.Errorf("objective = %g, want -0.05", sol.Objective)
	}
}

func TestAssignmentLPIsIntegral(t *testing.T) {
	// 3 jobs x 3 regions assignment with capacities: the LP relaxation of an
	// assignment problem has integral optima (totally unimodular matrix).
	costs := [][]float64{{4, 2, 8}, {4, 3, 7}, {3, 1, 6}}
	p := New(9)
	obj := make([]float64, 9)
	for m := 0; m < 3; m++ {
		for n := 0; n < 3; n++ {
			obj[m*3+n] = costs[m][n]
			if err := p.SetBounds(m*3+n, 0, 1); err != nil {
				t.Fatal(err)
			}
		}
	}
	if err := p.SetObjective(obj, Minimize); err != nil {
		t.Fatal(err)
	}
	for m := 0; m < 3; m++ {
		terms := []Term{{m * 3, 1}, {m*3 + 1, 1}, {m*3 + 2, 1}}
		p.AddConstraint(terms, EQ, 1)
	}
	for n := 0; n < 3; n++ {
		terms := []Term{{n, 1}, {3 + n, 1}, {6 + n, 1}}
		p.AddConstraint(terms, LE, 1)
	}
	sol := mustSolve(t, p)
	if sol.Status != Optimal {
		t.Fatalf("status = %v, want optimal", sol.Status)
	}
	for i, x := range sol.X {
		if !almostEq(x, 0, 1e-7) && !almostEq(x, 1, 1e-7) {
			t.Errorf("x[%d] = %g, not integral", i, x)
		}
	}
	// Optimal assignment: job0->col1(2), job1->col0(4) or col2, job2->col2(6)?
	// brute force: minimal total with distinct columns = 2+4+6=12.
	if !almostEq(sol.Objective, 12, 1e-6) {
		t.Errorf("objective = %g, want 12", sol.Objective)
	}
}

func TestCloneIndependence(t *testing.T) {
	p := New(2)
	if err := p.SetObjective([]float64{1, 2}, Minimize); err != nil {
		t.Fatal(err)
	}
	p.AddConstraint([]Term{{0, 1}, {1, 1}}, GE, 2)
	q := p.Clone()
	if err := q.SetBounds(0, 0, 0); err != nil {
		t.Fatal(err)
	}
	q.AddConstraint([]Term{{1, 1}}, GE, 5)

	solP := mustSolve(t, p)
	solQ := mustSolve(t, q)
	if !almostEq(solP.Objective, 2, 1e-6) {
		t.Errorf("parent objective = %g, want 2 (clone leaked)", solP.Objective)
	}
	if !almostEq(solQ.Objective, 10, 1e-6) {
		t.Errorf("clone objective = %g, want 10", solQ.Objective)
	}
}

func TestErrorPaths(t *testing.T) {
	p := New(2)
	if err := p.SetObjective([]float64{1}, Minimize); err == nil {
		t.Error("wrong-length objective accepted")
	}
	if err := p.SetObjectiveCoef(5, 1); err == nil {
		t.Error("out-of-range objective coef accepted")
	}
	if err := p.SetBounds(0, 3, 1); err == nil {
		t.Error("inverted bounds accepted")
	}
	if err := p.SetBounds(0, math.Inf(-1), 1); err == nil {
		t.Error("free variable accepted")
	}
	if _, err := p.AddConstraint([]Term{{9, 1}}, LE, 1); err == nil {
		t.Error("out-of-range constraint var accepted")
	}
}

func TestOpAndStatusStrings(t *testing.T) {
	if LE.String() != "<=" || GE.String() != ">=" || EQ.String() != "==" {
		t.Error("op strings wrong")
	}
	if Op(99).String() != "?" {
		t.Error("unknown op string wrong")
	}
	for s, want := range map[Status]string{
		Optimal: "optimal", Infeasible: "infeasible",
		Unbounded: "unbounded", IterLimit: "iteration-limit", Status(9): "unknown",
	} {
		if s.String() != want {
			t.Errorf("Status(%d).String() = %q, want %q", s, s.String(), want)
		}
	}
}

// bruteForceBoxLP exhaustively evaluates the LP min c'x over the box
// [0,u]^n intersected with <= constraints, by checking all vertices of the
// box and, where the box optimum is infeasible, falling back to a dense grid.
// Only valid as a reference when the true optimum lies at a box vertex or
// grid point; we use problems designed so a fine grid gets within tolerance.
func gridOptimum(c []float64, rows [][]float64, rhs []float64, u float64, steps int) (float64, bool) {
	n := len(c)
	best := math.Inf(1)
	found := false
	var rec func(i int, x []float64)
	rec = func(i int, x []float64) {
		if i == n {
			for r := range rows {
				s := 0.0
				for j := range x {
					s += rows[r][j] * x[j]
				}
				if s > rhs[r]+1e-9 {
					return
				}
			}
			v := 0.0
			for j := range x {
				v += c[j] * x[j]
			}
			if v < best {
				best = v
				found = true
			}
			return
		}
		for k := 0; k <= steps; k++ {
			x[i] = u * float64(k) / float64(steps)
			rec(i+1, x)
		}
	}
	rec(0, make([]float64, n))
	return best, found
}

// TestQuickAgainstGrid cross-checks the simplex optimum against a dense grid
// search on random small LPs: simplex must never be worse than any feasible
// grid point, and its solution must be feasible.
func TestQuickAgainstGrid(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := 2 + r.Intn(2)     // 2..3 vars
		mRows := 1 + r.Intn(3) // 1..3 constraints
		c := make([]float64, n)
		for j := range c {
			c[j] = math.Round((r.Float64()*4-2)*4) / 4 // in [-2,2], quarter steps
		}
		rows := make([][]float64, mRows)
		rhs := make([]float64, mRows)
		for i := range rows {
			rows[i] = make([]float64, n)
			for j := range rows[i] {
				rows[i][j] = math.Round(r.Float64()*4) / 2 // in [0,2]
			}
			rhs[i] = math.Round(r.Float64()*8) / 2 // in [0,4]
		}
		p := New(n)
		if err := p.SetObjective(c, Minimize); err != nil {
			return false
		}
		for j := 0; j < n; j++ {
			if err := p.SetBounds(j, 0, 2); err != nil {
				return false
			}
		}
		for i := range rows {
			terms := make([]Term, 0, n)
			for j, v := range rows[i] {
				if v != 0 {
					terms = append(terms, Term{j, v})
				}
			}
			p.AddConstraint(terms, LE, rhs[i])
		}
		sol, err := p.Solve()
		if err != nil || sol.Status != Optimal {
			// x=0 is always feasible here (all coefs >= 0, rhs >= 0), so the
			// LP can never be infeasible, and the box bound prevents
			// unboundedness.
			t.Logf("seed %d: unexpected status %v err %v", seed, sol.Status, err)
			return false
		}
		// Feasibility of the simplex solution.
		for i := range rows {
			s := 0.0
			for j := range sol.X {
				s += rows[i][j] * sol.X[j]
			}
			if s > rhs[i]+1e-6 {
				t.Logf("seed %d: solution violates row %d (%g > %g)", seed, i, s, rhs[i])
				return false
			}
		}
		for j, x := range sol.X {
			if x < -1e-9 || x > 2+1e-6 {
				t.Logf("seed %d: x[%d]=%g outside [0,2]", seed, j, x)
				return false
			}
		}
		gridBest, ok := gridOptimum(c, rows, rhs, 2, 8)
		if !ok {
			return true
		}
		if sol.Objective > gridBest+1e-6 {
			t.Logf("seed %d: simplex %.9f worse than grid %.9f", seed, sol.Objective, gridBest)
			return false
		}
		return true
	}
	cfg := &quick.Config{
		MaxCount: 120,
		Rand:     rng,
		Values:   nil,
	}
	if err := quick.Check(f, cfg); err != nil {
		t.Error(err)
	}
}

func BenchmarkSimplexAssignment50x5(b *testing.B) {
	// A WaterWise-shaped LP: 50 jobs x 5 regions.
	const M, N = 50, 5
	build := func() *Problem {
		p := New(M * N)
		obj := make([]float64, M*N)
		r := rand.New(rand.NewSource(1))
		for i := range obj {
			obj[i] = r.Float64()
			p.SetBounds(i, 0, 1)
		}
		p.SetObjective(obj, Minimize)
		for m := 0; m < M; m++ {
			terms := make([]Term, N)
			for n := 0; n < N; n++ {
				terms[n] = Term{m*N + n, 1}
			}
			p.AddConstraint(terms, EQ, 1)
		}
		for n := 0; n < N; n++ {
			terms := make([]Term, M)
			for m := 0; m < M; m++ {
				terms[m] = Term{m*N + n, 1}
			}
			p.AddConstraint(terms, LE, 12)
		}
		return p
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p := build()
		sol, err := p.Solve()
		if err != nil || sol.Status != Optimal {
			b.Fatalf("status %v err %v", sol.Status, err)
		}
	}
}
