package lp

// luFactor is a sparse LU factorization of the simplex basis matrix B with
// partial pivoting: P·B = L·U, where P is a row permutation (prow/pinv), L is
// unit lower triangular, and U is upper triangular. Both factors are stored
// column-major in pivot coordinates; U's diagonal is kept separately as its
// reciprocal. The factorization is built column by column in the
// Gilbert–Peierls style: each basis column is scattered into a dense
// accumulator, eliminated against the already-built L columns in ascending
// pivot order (a small binary heap orders the updates, so work tracks the
// column's nonzeros plus fill rather than m), and the pivot is chosen as the
// largest-magnitude candidate among not-yet-pivoted rows.
//
// For the WaterWise round matrices — assignment rows plus capacity rows, a
// network structure whose bases are triangularizable — the factorization
// produces (near-)zero fill, so FTRAN/BTRAN solves cost O(nnz(B)) and a
// refactorization costs little more than reading the basis columns once.
type luFactor struct {
	m        int
	lColPtr  []int32
	lRow     []int32
	lVal     []float64
	uColPtr  []int32
	uRow     []int32
	uVal     []float64
	uDiagInv []float64
	prow     []int32 // pivot position -> original row
	pinv     []int32 // original row -> pivot position
	ok       bool

	// factorization scratch
	work   []float64 // dense accumulator, original-row indexed
	inCol  []bool    // original-row membership of the current column
	nzRows []int32
	heap   []int32
}

// luPivotTol is the absolute magnitude below which a pivot candidate is
// considered numerically zero (the basis is then reported singular).
const luPivotTol = 1e-10

func (f *luFactor) init(m int) {
	f.m = m
	f.ok = false
	if cap(f.prow) < m || cap(f.lColPtr) < m+1 {
		f.prow = make([]int32, m)
		f.pinv = make([]int32, m)
		f.uDiagInv = make([]float64, m)
		f.work = make([]float64, m)
		f.inCol = make([]bool, m)
		f.nzRows = make([]int32, 0, m)
		f.heap = make([]int32, 0, m)
		f.lColPtr = make([]int32, m+1)
		f.uColPtr = make([]int32, m+1)
	}
	f.prow = f.prow[:m]
	f.pinv = f.pinv[:m]
	f.uDiagInv = f.uDiagInv[:m]
	f.work = f.work[:m]
	f.inCol = f.inCol[:m]
	f.lColPtr = f.lColPtr[:m+1]
	f.uColPtr = f.uColPtr[:m+1]
	for i := range f.pinv {
		f.pinv[i] = -1
	}
	f.lRow = f.lRow[:0]
	f.lVal = f.lVal[:0]
	f.uRow = f.uRow[:0]
	f.uVal = f.uVal[:0]
	f.lColPtr[0] = 0
	f.uColPtr[0] = 0
}

func heapPushI32(h []int32, v int32) []int32 {
	h = append(h, v)
	i := len(h) - 1
	for i > 0 {
		p := (i - 1) / 2
		if h[p] <= h[i] {
			break
		}
		h[p], h[i] = h[i], h[p]
		i = p
	}
	return h
}

func heapPopI32(h []int32) (int32, []int32) {
	top := h[0]
	n := len(h) - 1
	h[0] = h[n]
	h = h[:n]
	i := 0
	for {
		l, r := 2*i+1, 2*i+2
		small := i
		if l < n && h[l] < h[small] {
			small = l
		}
		if r < n && h[r] < h[small] {
			small = r
		}
		if small == i {
			break
		}
		h[i], h[small] = h[small], h[i]
		i = small
	}
	return top, h
}

// factorize builds the factorization of the m x m basis whose pos-th column
// is produced by col(pos, emit); emit may be called in any order but must not
// repeat a row within one column. Returns false when the basis is
// (numerically) singular, leaving the factor unusable (ok == false).
func (f *luFactor) factorize(m int, col func(pos int, emit func(row int32, v float64))) bool {
	f.init(m)
	nz := f.nzRows[:0]
	h := f.heap[:0]
	// One emit closure for the whole factorization (it would otherwise
	// allocate once per basis column).
	emit := func(r int32, v float64) {
		f.inCol[r] = true
		f.work[r] = v
		nz = append(nz, r)
		if p := f.pinv[r]; p >= 0 {
			h = heapPushI32(h, p)
		}
	}
	for k := 0; k < m; k++ {
		nz = nz[:0]
		h = h[:0]
		col(k, emit)
		// Eliminate against finished columns in ascending pivot order. Fill
		// rows discovered along the way join the heap (their pivot positions
		// are always beyond the one being processed).
		for len(h) > 0 {
			var pos int32
			pos, h = heapPopI32(h)
			pr := f.prow[pos]
			x := f.work[pr]
			if x == 0 {
				continue
			}
			f.uRow = append(f.uRow, pos)
			f.uVal = append(f.uVal, x)
			for t := f.lColPtr[pos]; t < f.lColPtr[pos+1]; t++ {
				r := f.lRow[t]
				if !f.inCol[r] {
					f.inCol[r] = true
					f.work[r] = 0
					nz = append(nz, r)
					if p := f.pinv[r]; p >= 0 {
						h = heapPushI32(h, p)
					}
				}
				f.work[r] -= f.lVal[t] * x
			}
		}
		// Partial pivoting among not-yet-pivoted rows.
		best := int32(-1)
		bestAbs := 0.0
		for _, r := range nz {
			if f.pinv[r] >= 0 {
				continue
			}
			a := f.work[r]
			if a < 0 {
				a = -a
			}
			if a > bestAbs {
				bestAbs = a
				best = r
			}
		}
		if best < 0 || bestAbs < luPivotTol {
			for _, r := range nz {
				f.inCol[r] = false
				f.work[r] = 0
			}
			f.nzRows, f.heap = nz[:0], h[:0]
			return false
		}
		piv := f.work[best]
		f.prow[k] = best
		f.pinv[best] = int32(k)
		f.uDiagInv[k] = 1 / piv
		f.uColPtr[k+1] = int32(len(f.uRow))
		for _, r := range nz {
			if f.pinv[r] >= 0 {
				continue
			}
			if v := f.work[r]; v != 0 {
				// Stored by original row for now; renumbered below once every
				// row has its pivot position.
				f.lRow = append(f.lRow, r)
				f.lVal = append(f.lVal, v/piv)
			}
		}
		f.lColPtr[k+1] = int32(len(f.lRow))
		for _, r := range nz {
			f.inCol[r] = false
			f.work[r] = 0
		}
	}
	for i, r := range f.lRow {
		f.lRow[i] = f.pinv[r]
	}
	f.nzRows, f.heap = nz[:0], h[:0]
	f.ok = true
	return true
}

// ftran solves B0·x = b for a dense right-hand side b (original-row indexed,
// preserved), writing into x (pivot-position indexed).
func (f *luFactor) ftran(b, x []float64) {
	for k := 0; k < f.m; k++ {
		x[k] = b[f.prow[k]]
	}
	f.solveLower(x)
	f.solveUpper(x)
}

func (f *luFactor) solveLower(x []float64) {
	for k := 0; k < f.m; k++ {
		xk := x[k]
		if xk == 0 {
			continue
		}
		for t := f.lColPtr[k]; t < f.lColPtr[k+1]; t++ {
			x[f.lRow[t]] -= f.lVal[t] * xk
		}
	}
}

func (f *luFactor) solveUpper(x []float64) {
	for k := f.m - 1; k >= 0; k-- {
		xk := x[k] * f.uDiagInv[k]
		x[k] = xk
		if xk == 0 {
			continue
		}
		for t := f.uColPtr[k]; t < f.uColPtr[k+1]; t++ {
			x[f.uRow[t]] -= f.uVal[t] * xk
		}
	}
}

// btran solves B0ᵀ·y = c; c is pivot-position indexed and destroyed, y is
// original-row indexed and fully overwritten.
func (f *luFactor) btran(c, y []float64) {
	// Uᵀ is lower triangular: forward substitution, gathering column k of U.
	for k := 0; k < f.m; k++ {
		acc := c[k]
		for t := f.uColPtr[k]; t < f.uColPtr[k+1]; t++ {
			acc -= f.uVal[t] * c[f.uRow[t]]
		}
		c[k] = acc * f.uDiagInv[k]
	}
	// Lᵀ is upper triangular: backward substitution.
	for k := f.m - 1; k >= 0; k-- {
		acc := c[k]
		for t := f.lColPtr[k]; t < f.lColPtr[k+1]; t++ {
			acc -= f.lVal[t] * c[f.lRow[t]]
		}
		c[k] = acc
	}
	for k := 0; k < f.m; k++ {
		y[f.prow[k]] = c[k]
	}
}
