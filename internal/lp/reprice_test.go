package lp

import (
	"math"
	"math/rand"
	"testing"
)

// mutateLP perturbs a problem in place the way cross-round model reuse does:
// objective drift, RHS drift, and variable-bound changes (including fixing
// and re-opening), without touching the constraint structure.
func mutateLP(r *rand.Rand, p *Problem) {
	for j := 0; j < p.nvars; j++ {
		if r.Intn(2) == 0 {
			p.obj[j] = math.Round((r.Float64()*4-2)*8) / 8
		}
	}
	for i := range p.rows {
		if r.Intn(3) == 0 {
			p.rows[i].RHS = math.Round((r.Float64()*8-2)*4) / 4
		}
	}
	for j := 0; j < p.nvars; j++ {
		switch r.Intn(6) {
		case 0: // fix at a point
			v := math.Round(r.Float64()*8) / 4
			p.lower[j], p.upper[j] = v, v
		case 1: // re-open
			p.lower[j] = 0
			p.upper[j] = math.Inf(1)
			if r.Intn(2) == 0 {
				p.upper[j] = math.Round(r.Float64()*16) / 4
			}
		}
	}
}

// TestSolveRepriceDifferential drives chains of mutated problems through
// SolveReprice and cross-checks every link against a from-scratch solve:
// statuses must agree, objectives must match to 1e-6, and the repriced
// solution must be feasible for the *current* problem data.
func TestSolveRepriceDifferential(t *testing.T) {
	r := rand.New(rand.NewSource(20260728))
	warm := 0
	for chain := 0; chain < 120; chain++ {
		p := randomLP(r)
		b := NewBasis()
		for step := 0; step < 6; step++ {
			if step > 0 {
				mutateLP(r, p)
			}
			got, err := p.SolveReprice(b)
			if err != nil {
				t.Fatalf("chain %d step %d: SolveReprice: %v", chain, step, err)
			}
			want, err := p.Clone().Solve()
			if err != nil {
				t.Fatalf("chain %d step %d: cold Solve: %v", chain, step, err)
			}
			if got.Status == IterLimit || want.Status == IterLimit {
				t.Fatalf("chain %d step %d: iteration limit (reprice=%v cold=%v)", chain, step, got.Status, want.Status)
			}
			if got.Status != want.Status {
				t.Errorf("chain %d step %d: status %v, cold %v", chain, step, got.Status, want.Status)
				continue
			}
			if got.WarmStarted {
				warm++
			}
			if got.Status != Optimal {
				continue
			}
			if math.Abs(got.Objective-want.Objective) > 1e-6 {
				t.Errorf("chain %d step %d: objective %.9f, cold %.9f (warm=%v)",
					chain, step, got.Objective, want.Objective, got.WarmStarted)
			}
			checkFeasible(t, p, got.X, "reprice")
		}
	}
	if warm == 0 {
		t.Fatalf("no chain link was ever served by a repriced warm start")
	}
	t.Logf("repriced warm starts: %d", warm)
}

// TestSolveRepriceRoundModel replays the scheduler's round-model shape — M
// assignment EQ rows over binaries plus N capacity LE rows — through a round
// sequence where every round re-prices the objective, rewrites the capacity
// RHS, and fixes a fresh set of forbidden pairs. The warm path must agree
// with a cold solve on every round, serve the bulk of the rounds, and keep
// its primal walks short (a handful of pivots per round; the system-level
// iteration comparison against the cold path lives in internal/core's
// cross-round differential test, where whole traces are replayed).
func TestSolveRepriceRoundModel(t *testing.T) {
	const M, N, rounds = 10, 4, 40
	r := rand.New(rand.NewSource(42))
	p := New(M * N)
	for m := 0; m < M; m++ {
		terms := make([]Term, N)
		for n := 0; n < N; n++ {
			terms[n] = Term{Var: m*N + n, Coef: 1}
		}
		if _, err := p.AddConstraint(terms, EQ, 1); err != nil {
			t.Fatal(err)
		}
	}
	capRows := make([]int, N)
	for n := 0; n < N; n++ {
		terms := make([]Term, M)
		for m := 0; m < M; m++ {
			terms[m] = Term{Var: m*N + n, Coef: 1}
		}
		row, err := p.AddConstraint(terms, LE, float64(M))
		if err != nil {
			t.Fatal(err)
		}
		capRows[n] = row
	}

	b := NewBasis()
	warm, warmIters, freshIters := 0, 0, 0
	// Round-to-round dynamics mirror the scheduler's light-load regime —
	// where the reprice path engages: objective coefficients drift with the
	// (slowly moving) grid conditions, capacities hover a little above
	// demand, and a small churning minority of pairs is forbidden by the
	// tolerance constraint.
	obj := make([]float64, M*N)
	for v := range obj {
		obj[v] = 0.2 + r.Float64()
	}
	forbidden := make([]bool, M*N)
	for round := 0; round < rounds; round++ {
		for v := range obj {
			obj[v] += (r.Float64() - 0.5) * 0.05
			if obj[v] < 0 {
				obj[v] = 0
			}
		}
		if err := p.SetObjective(obj, Minimize); err != nil {
			t.Fatal(err)
		}
		for n := 0; n < N; n++ {
			// Σ caps comfortably >= M: the light-load regime.
			if err := p.SetRHS(capRows[n], float64(M/2+r.Intn(2))); err != nil {
				t.Fatal(err)
			}
		}
		for m := 0; m < M; m++ {
			open := 0
			for n := 0; n < N; n++ {
				forbidden[m*N+n] = r.Intn(50) == 0
				if !forbidden[m*N+n] {
					open++
				}
			}
			if open == 0 {
				forbidden[m*N+r.Intn(N)] = false
			}
			for n := 0; n < N; n++ {
				v := m*N + n
				lo, hi := 0.0, math.Inf(1)
				if forbidden[v] {
					lo, hi = 0, 0
				}
				if err := p.SetBounds(v, lo, hi); err != nil {
					t.Fatal(err)
				}
			}
		}
		got, err := p.SolveReprice(b)
		if err != nil {
			t.Fatalf("round %d: SolveReprice: %v", round, err)
		}
		want, err := p.Clone().Solve()
		if err != nil {
			t.Fatalf("round %d: cold Solve: %v", round, err)
		}
		if got.Status != want.Status {
			t.Fatalf("round %d: status %v, cold %v", round, got.Status, want.Status)
		}
		if got.Status == Optimal && math.Abs(got.Objective-want.Objective) > 1e-6 {
			t.Errorf("round %d: objective %.9f, cold %.9f (warm=%v)",
				round, got.Objective, want.Objective, got.WarmStarted)
		}
		if got.Status == Optimal {
			checkFeasible(t, p, got.X, "reprice round model")
		}
		if got.WarmStarted {
			warm++
			warmIters += got.Iters
			freshIters += want.Iters
		}
	}
	if warm < rounds/2 {
		t.Errorf("only %d/%d rounds were warm started", warm, rounds)
	}
	if warmIters > 2*warm {
		t.Errorf("warm-started rounds averaged %.1f simplex iters — the primal walk from the previous optimum should be a handful of pivots",
			float64(warmIters)/float64(warm))
	}
	t.Logf("warm %d/%d rounds, warm iters %d (fresh-cold iters on those rounds: %d)", warm, rounds, warmIters, freshIters)
}
