package lp

import (
	"fmt"
	"math"
	"math/rand"
	"testing"
)

// randomSparseLP builds a random LP at the sparse revised engine's home turf:
// wider and sparser than randomLP (differential_test.go), with each row
// touching only a few variables — the shape where a dense tableau and a
// revised factorization can disagree only through bugs.
func randomSparseLP(r *rand.Rand) *Problem {
	n := 12 + r.Intn(30)    // 12..41 vars
	mRows := 6 + r.Intn(20) // 6..25 rows
	p := New(n)
	c := make([]float64, n)
	for j := range c {
		c[j] = math.Round((r.Float64()*4-2)*8) / 8
	}
	sense := Minimize
	if r.Intn(2) == 1 {
		sense = Maximize
	}
	p.SetObjective(c, sense)
	// Anchor point: RHS values are placed relative to each row's value at x0,
	// so the instance is feasible by construction (bound tightening in the
	// warm-chain test can still make it infeasible later — that path is
	// compared against a cold solve too).
	x0 := make([]float64, n)
	for j := 0; j < n; j++ {
		lo := 0.0
		if r.Intn(4) == 0 {
			lo = math.Round(r.Float64()*8) / 4
		}
		hi := math.Inf(1)
		if r.Intn(4) != 0 {
			hi = lo + 1 + math.Round(r.Float64()*12)/4
		}
		if err := p.SetBounds(j, lo, hi); err != nil {
			panic(err)
		}
		span := 4.0
		if !math.IsInf(hi, 1) {
			span = hi - lo
		}
		x0[j] = lo + math.Round(r.Float64()*span*4)/4
	}
	for i := 0; i < mRows; i++ {
		nTerms := 2 + r.Intn(4) // 2..5 nonzeros per row
		var terms []Term
		seen := map[int]bool{}
		at := 0.0
		for len(terms) < nTerms {
			j := r.Intn(n)
			if seen[j] {
				continue
			}
			seen[j] = true
			coef := math.Round((r.Float64()*4-2)*4) / 4
			if coef == 0 {
				coef = 1
			}
			terms = append(terms, Term{j, coef})
			at += coef * x0[j]
		}
		var op Op
		rhs := at
		switch r.Intn(4) {
		case 0:
			op = EQ
		case 1:
			op = GE
			rhs = at - math.Round(r.Float64()*8)/4
		default:
			op = LE
			rhs = at + math.Round(r.Float64()*8)/4
		}
		p.AddConstraint(terms, op, rhs)
	}
	return p
}

// TestSparseDifferentialVsReference cross-checks the revised engine against
// the retained dense two-phase reference on 200 random sparse LPs: statuses
// agree, objectives match to 1e-6, and the revised solution is feasible.
func TestSparseDifferentialVsReference(t *testing.T) {
	r := rand.New(rand.NewSource(20260729))
	for k := 0; k < 200; k++ {
		p := randomSparseLP(r)
		got, err := p.Solve()
		if err != nil {
			t.Fatalf("case %d: Solve: %v", k, err)
		}
		want, err := SolveReference(p)
		if err != nil {
			t.Fatalf("case %d: SolveReference: %v", k, err)
		}
		if got.Status == IterLimit || want.Status == IterLimit {
			t.Errorf("case %d: iteration limit (new=%v ref=%v)", k, got.Status, want.Status)
			continue
		}
		if got.Status != want.Status {
			t.Errorf("case %d: status %v, reference %v", k, got.Status, want.Status)
			continue
		}
		if got.Status != Optimal {
			continue
		}
		if math.Abs(got.Objective-want.Objective) > 1e-6 {
			t.Errorf("case %d: objective %.9f, reference %.9f", k, got.Objective, want.Objective)
		}
		checkFeasible(t, p, got.X, fmt.Sprintf("case %d (revised)", k))
	}
}

// TestAssignmentRoundVsReference cross-checks the engine on assignment-shaped
// scheduling rounds — EQ assignment rows, LE capacity rows, forbidden pairs —
// the production matrix of the WaterWise controller.
func TestAssignmentRoundVsReference(t *testing.T) {
	r := rand.New(rand.NewSource(7))
	const M, N = 30, 5
	for round := 0; round < 25; round++ {
		p, _ := buildRoundLP(t, M, N)
		obj := make([]float64, M*N)
		for v := range obj {
			obj[v] = 0.2 + r.Float64()
		}
		mutateRoundLP(t, p, r, obj, M, N)
		got, err := p.Solve()
		if err != nil {
			t.Fatalf("round %d: Solve: %v", round, err)
		}
		want, err := SolveReference(p)
		if err != nil {
			t.Fatalf("round %d: SolveReference: %v", round, err)
		}
		if got.Status != want.Status {
			t.Fatalf("round %d: status %v, reference %v", round, got.Status, want.Status)
		}
		if got.Status != Optimal {
			continue
		}
		if math.Abs(got.Objective-want.Objective) > 1e-6 {
			t.Errorf("round %d: objective %.9f, reference %.9f", round, got.Objective, want.Objective)
		}
		checkFeasible(t, p, got.X, fmt.Sprintf("round %d", round))
		// The assignment polytope is integral: the vertex the simplex lands
		// on must be 0/1.
		for v, x := range got.X {
			if math.Abs(x) > 1e-7 && math.Abs(x-1) > 1e-7 {
				t.Errorf("round %d: x[%d] = %g, not integral", round, v, x)
			}
		}
	}
}

// TestSparseWarmChainsFewerIters replays bound-tightening chains (the
// branch-and-bound mutation) through SolveWarm and checks, beyond the
// objective equality the differential suite already enforces, that the warm
// path spends fewer total simplex iterations than cold re-solves of the same
// chain — the point of reviving a basis.
func TestSparseWarmChainsFewerIters(t *testing.T) {
	r := rand.New(rand.NewSource(404))
	warmIters, coldIters, warmed := 0, 0, 0
	for chain := 0; chain < 60; chain++ {
		p := randomSparseLP(r)
		basis := NewBasis()
		sol, err := p.SolveWarm(basis)
		if err != nil {
			t.Fatalf("chain %d: %v", chain, err)
		}
		for step := 0; sol.Status == Optimal && step < 6; step++ {
			v := r.Intn(p.NumVars())
			lo, hi := p.Bounds(v)
			x := sol.X[v]
			if r.Intn(2) == 0 {
				hi = math.Floor(x)
			} else {
				lo = math.Floor(x) + 1
			}
			if lo > hi {
				break
			}
			p.SetBounds(v, lo, hi)
			sol, err = p.SolveWarm(basis)
			if err != nil {
				t.Fatalf("chain %d step %d: warm: %v", chain, step, err)
			}
			cold, err := p.Clone().Solve()
			if err != nil {
				t.Fatalf("chain %d step %d: cold: %v", chain, step, err)
			}
			if sol.Status != cold.Status {
				t.Errorf("chain %d step %d: warm status %v, cold %v", chain, step, sol.Status, cold.Status)
				break
			}
			if sol.Status == Optimal && math.Abs(sol.Objective-cold.Objective) > 1e-6 {
				t.Errorf("chain %d step %d: warm obj %.9f, cold %.9f", chain, step, sol.Objective, cold.Objective)
			}
			if sol.WarmStarted {
				warmed++
				warmIters += sol.Iters
				coldIters += cold.Iters
			}
		}
	}
	if warmed == 0 {
		t.Fatal("no chain step was warm started")
	}
	if warmIters >= coldIters {
		t.Errorf("warm-started steps spent %d iterations, cold re-solves %d — the revived basis saved nothing", warmIters, coldIters)
	}
	t.Logf("warm steps %d: %d warm iters vs %d cold iters", warmed, warmIters, coldIters)
}

// TestWarmRepeatAfterInfeasible: a warm solve that ends Infeasible leaves its
// primal-infeasible end state in the Basis; re-solving the identical problem
// must report Infeasible again, not revive that state verbatim as Optimal.
func TestWarmRepeatAfterInfeasible(t *testing.T) {
	p := New(1)
	if err := p.SetObjective([]float64{1}, Minimize); err != nil {
		t.Fatal(err)
	}
	if _, err := p.AddConstraint([]Term{{0, 1}}, GE, 5); err != nil {
		t.Fatal(err)
	}
	if err := p.SetBounds(0, 0, 10); err != nil {
		t.Fatal(err)
	}
	b := NewBasis()
	first, err := p.SolveWarm(b)
	if err != nil || first.Status != Optimal || math.Abs(first.Objective-5) > 1e-9 {
		t.Fatalf("first solve: %v obj %g err %v", first.Status, first.Objective, err)
	}
	if err := p.SetBounds(0, 0, 2); err != nil {
		t.Fatal(err)
	}
	for rep := 0; rep < 3; rep++ {
		sol, err := p.SolveWarm(b)
		if err != nil {
			t.Fatal(err)
		}
		if sol.Status != Infeasible {
			t.Fatalf("repeat %d: status %v, want infeasible", rep, sol.Status)
		}
	}
}

// TestRepriceEQRowRHSChange: the revised reprice path revives through EQ-row
// RHS changes (re-solving B⁻¹b directly), which the dense tableau could not.
func TestRepriceEQRowRHSChange(t *testing.T) {
	p := New(2)
	if err := p.SetObjective([]float64{1, 2}, Minimize); err != nil {
		t.Fatal(err)
	}
	if _, err := p.AddConstraint([]Term{{0, 1}, {1, 1}}, EQ, 4); err != nil {
		t.Fatal(err)
	}
	if _, err := p.AddConstraint([]Term{{0, 1}}, LE, 3); err != nil {
		t.Fatal(err)
	}
	b := NewBasis()
	first, err := p.SolveReprice(b)
	if err != nil || first.Status != Optimal {
		t.Fatalf("first solve: %v %v", first.Status, err)
	}
	// x = (3, 1), objective 5. Move the EQ RHS: x = (3, 3), objective 9.
	if err := p.SetRHS(0, 6); err != nil {
		t.Fatal(err)
	}
	second, err := p.SolveReprice(b)
	if err != nil || second.Status != Optimal {
		t.Fatalf("second solve: %v %v", second.Status, err)
	}
	if !second.WarmStarted {
		t.Error("EQ-row RHS change was not served by the repricing warm start")
	}
	if math.Abs(second.Objective-9) > 1e-9 {
		t.Errorf("objective after EQ RHS change = %g, want 9", second.Objective)
	}
	checkFeasible(t, p, second.X, "eq-rhs reprice")
}
