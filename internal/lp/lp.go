// Package lp implements a sparse revised bounded-variable simplex solver for
// linear programs. It is the foundation that internal/milp builds
// branch-and-bound on, replacing the PuLP/GLPK stack used by the WaterWise
// paper.
//
// The solver handles:
//
//   - minimization and maximization objectives,
//   - <=, >=, and == constraints,
//   - per-variable lower and upper bounds, enforced natively in the simplex
//     ratio test (no constraint row per bound, so the tableau is O(m·n)
//     in the number of constraints m rather than O((m+n)·n)),
//   - infeasibility and unboundedness detection,
//   - warm starts: a solved Problem exports its Basis, and after variable
//     bound changes (branch-and-bound's only mutation) SolveWarm
//     re-optimizes with the dual simplex in a handful of pivots instead of
//     re-solving from scratch.
//
// The engine (simplex.go) stores the constraint matrix in compressed sparse
// column form, keeps the basis as a sparse LU factorization (lu.go) extended
// by product-form eta updates with periodic refactorization, and computes
// pivot columns and reduced costs by FTRAN/BTRAN solves — so the cost of a
// pivot tracks the matrix's nonzero count rather than m·n. Pricing is
// Dantzig scores over a rotating partial-pricing window, with an automatic
// switch to Bland's rule when an iteration budget suggests cycling, which
// guarantees termination. The first generation of this package — a two-phase
// dense tableau simplex that materializes every upper bound as an explicit
// row — is retained in reference.go as SolveReference, the oracle for
// differential tests.
package lp

import (
	"errors"
	"fmt"
	"math"
)

// Sense selects the optimization direction.
type Sense int

const (
	// Minimize the objective (the default).
	Minimize Sense = iota
	// Maximize the objective.
	Maximize
)

// Op is a constraint comparison operator.
type Op int

const (
	// LE is "less than or equal" (<=).
	LE Op = iota
	// GE is "greater than or equal" (>=).
	GE
	// EQ is equality (==).
	EQ
)

func (o Op) String() string {
	switch o {
	case LE:
		return "<="
	case GE:
		return ">="
	case EQ:
		return "=="
	}
	return "?"
}

// Status reports the outcome of a solve.
type Status int

const (
	// Optimal means an optimal basic feasible solution was found.
	Optimal Status = iota
	// Infeasible means the constraints admit no solution.
	Infeasible
	// Unbounded means the objective can be improved without limit.
	Unbounded
	// IterLimit means the iteration budget was exhausted before convergence.
	IterLimit
)

func (s Status) String() string {
	switch s {
	case Optimal:
		return "optimal"
	case Infeasible:
		return "infeasible"
	case Unbounded:
		return "unbounded"
	case IterLimit:
		return "iteration-limit"
	}
	return "unknown"
}

// Term is one coefficient in a sparse constraint row: Coef * x[Var].
type Term struct {
	Var  int
	Coef float64
}

// Constraint is a sparse linear constraint: sum(Terms) Op RHS.
type Constraint struct {
	Terms []Term
	Op    Op
	RHS   float64
}

// Problem is a linear program under construction. Create one with New, add
// the objective, bounds, and constraints, then call Solve.
type Problem struct {
	nvars  int
	sense  Sense
	obj    []float64
	lower  []float64
	upper  []float64
	rows   []Constraint
	maxIt  int
	epsTol float64
	// cscCache is the constraint matrix in compressed sparse column form,
	// built lazily on the first solve and shared by clones, warm-start bases,
	// and branch-and-bound workers (it depends only on the constraint
	// structure, which AddConstraint alone mutates).
	cscCache *csc
}

// New returns a Problem with nvars decision variables, all with default
// bounds [0, +inf) and zero objective coefficients.
func New(nvars int) *Problem {
	p := &Problem{
		nvars:  nvars,
		obj:    make([]float64, nvars),
		lower:  make([]float64, nvars),
		upper:  make([]float64, nvars),
		maxIt:  0,
		epsTol: 1e-9,
	}
	for i := range p.upper {
		p.upper[i] = math.Inf(1)
	}
	return p
}

// NumVars returns the number of decision variables.
func (p *Problem) NumVars() int { return p.nvars }

// NumConstraints returns the number of constraint rows added so far.
func (p *Problem) NumConstraints() int { return len(p.rows) }

// SetSense sets the optimization direction.
func (p *Problem) SetSense(s Sense) { p.sense = s }

// SetObjectiveCoef sets the objective coefficient of variable i.
func (p *Problem) SetObjectiveCoef(i int, c float64) error {
	if i < 0 || i >= p.nvars {
		return fmt.Errorf("lp: objective variable %d out of range [0,%d)", i, p.nvars)
	}
	p.obj[i] = c
	return nil
}

// SetObjective replaces the whole objective vector.
func (p *Problem) SetObjective(c []float64, sense Sense) error {
	if len(c) != p.nvars {
		return fmt.Errorf("lp: objective has %d coefficients, want %d", len(c), p.nvars)
	}
	copy(p.obj, c)
	p.sense = sense
	return nil
}

// ObjectiveCoef returns the objective coefficient of variable i in the
// caller's sense.
func (p *Problem) ObjectiveCoef(i int) float64 { return p.obj[i] }

// SetBounds sets lo <= x[i] <= hi. Use math.Inf(1) for an unbounded upper.
func (p *Problem) SetBounds(i int, lo, hi float64) error {
	if i < 0 || i >= p.nvars {
		return fmt.Errorf("lp: bounds variable %d out of range [0,%d)", i, p.nvars)
	}
	if lo > hi {
		return fmt.Errorf("lp: variable %d has lower bound %g > upper bound %g", i, lo, hi)
	}
	if math.IsInf(lo, -1) {
		return errors.New("lp: free (lower-unbounded) variables are not supported")
	}
	p.lower[i] = lo
	p.upper[i] = hi
	return nil
}

// Bounds returns the current bounds of variable i.
func (p *Problem) Bounds(i int) (lo, hi float64) { return p.lower[i], p.upper[i] }

// ResetBounds replaces the bounds of every variable at once; branch-and-bound
// workers use it to rebuild a node's box from the root bounds in one copy.
func (p *Problem) ResetBounds(lo, hi []float64) error {
	if len(lo) != p.nvars || len(hi) != p.nvars {
		return fmt.Errorf("lp: ResetBounds got %d/%d bounds, want %d", len(lo), len(hi), p.nvars)
	}
	copy(p.lower, lo)
	copy(p.upper, hi)
	return nil
}

// AddConstraint appends a sparse constraint row and returns its index.
func (p *Problem) AddConstraint(terms []Term, op Op, rhs float64) (int, error) {
	for _, t := range terms {
		if t.Var < 0 || t.Var >= p.nvars {
			return 0, fmt.Errorf("lp: constraint references variable %d out of range [0,%d)", t.Var, p.nvars)
		}
	}
	cp := make([]Term, len(terms))
	copy(cp, terms)
	p.rows = append(p.rows, Constraint{Terms: cp, Op: op, RHS: rhs})
	p.cscCache = nil // constraint structure changed
	return len(p.rows) - 1, nil
}

// structCSC returns the cached CSC form of the constraint matrix, building it
// on first use.
func (p *Problem) structCSC() *csc {
	if p.cscCache == nil {
		p.cscCache = buildCSC(p.nvars, p.rows)
	}
	return p.cscCache
}

// Compile eagerly builds the problem's compressed sparse column matrix (it is
// otherwise built lazily on the first solve). The scheduler's round-model
// cache calls this once per batch shape so every round — and every clone the
// branch-and-bound workers take — reuses the same immutable CSC arrays.
func (p *Problem) Compile() { p.structCSC() }

// SetRHS changes the right-hand side of constraint i in place. Round-to-round
// model reuse (the WaterWise scheduler's capacity rows) updates RHS values
// instead of rebuilding the whole problem.
func (p *Problem) SetRHS(i int, rhs float64) error {
	if i < 0 || i >= len(p.rows) {
		return fmt.Errorf("lp: constraint %d out of range [0,%d)", i, len(p.rows))
	}
	p.rows[i].RHS = rhs
	return nil
}

// Clone returns a deep copy of the problem; branch-and-bound uses this to
// tighten variable bounds without disturbing the parent node.
func (p *Problem) Clone() *Problem {
	q := &Problem{
		nvars:  p.nvars,
		sense:  p.sense,
		obj:    append([]float64(nil), p.obj...),
		lower:  append([]float64(nil), p.lower...),
		upper:  append([]float64(nil), p.upper...),
		rows:   make([]Constraint, len(p.rows)),
		maxIt:  p.maxIt,
		epsTol: p.epsTol,
		// The CSC cache is immutable once built; clones share it until either
		// side changes the constraint structure (which resets its own cache).
		cscCache: p.cscCache,
	}
	// Constraint term slices are never mutated after AddConstraint, so the
	// rows may share term backing arrays safely.
	copy(q.rows, p.rows)
	return q
}

// Solution is the result of a successful or failed solve.
type Solution struct {
	Status    Status
	Objective float64
	X         []float64
	Iters     int
	// ReducedCosts holds the final reduced cost of every structural
	// variable in minimization space (the internal sense; for Maximize
	// problems multiply by -1 to recover the caller's sense). Nil unless
	// the solve reached Optimal. Branch-and-bound uses these for
	// reduced-cost fixing.
	ReducedCosts []float64
	// WarmStarted reports whether this solve reused a Basis instead of
	// running the two-phase method from scratch.
	WarmStarted bool
}

// Basis is a reusable snapshot of solver state: the basis headers (basic
// column per position, column statuses, bounds, costs, and original RHS) of a
// solved Problem. Reviving one refactorizes the basis matrix from those
// headers and re-solves the basic values — there is no tableau snapshot to
// replay, so a Basis is O(m + n) to clone. After the problem's variable
// bounds change (the only mutation branch-and-bound performs), SolveWarm
// restores optimality with a short dual-simplex run instead of a
// from-scratch solve.
//
// A Basis is only meaningful for a Problem with the same constraints and
// objective as the one that produced it; SolveWarm detects objective drift
// (via dual infeasibility) and falls back to a cold solve. A Basis is not
// safe for concurrent use; Clone one per worker.
type Basis struct {
	s *simplex
}

// NewBasis returns an empty basis: the first SolveWarm through it runs cold
// and stores the resulting state.
func NewBasis() *Basis { return &Basis{} }

// Valid reports whether the basis holds reusable solver state.
func (b *Basis) Valid() bool { return b != nil && b.s != nil }

// Clone returns an independent deep copy of the basis.
func (b *Basis) Clone() *Basis {
	if !b.Valid() {
		return &Basis{}
	}
	return &Basis{s: b.s.clone()}
}

// Solve runs the bounded-variable simplex from scratch and returns the
// solution. The returned error is non-nil only for malformed problems;
// infeasible and unbounded models are reported via Solution.Status.
func (p *Problem) Solve() (*Solution, error) {
	return p.SolveWarm(nil)
}

// SolveWarm solves the problem, reusing b when possible. A nil b (or an
// empty one) runs the two-phase method cold; a valid b from a prior solve of
// a structurally identical problem warm starts the dual simplex from the
// stored basis. On return, a non-nil b holds the final state for the next
// warm start.
func (p *Problem) SolveWarm(b *Basis) (*Solution, error) {
	return p.solveReusing(b, func(s *simplex) (Status, bool) {
		if !s.warmApply(p) {
			return Optimal, false
		}
		return s.solveWarm(), true
	})
}

// SolveReprice solves the problem like SolveWarm, but additionally revives a
// basis whose objective coefficients or constraint right-hand sides have
// changed since it was stored. Where SolveWarm treats any objective/RHS drift
// as grounds for a cold solve, SolveReprice re-prices the stored engine in
// place: the basis matrix is refactorized from the stored headers, the basic
// values are re-solved against the new RHS and bounds (x_B = B⁻¹(b − N·x_N),
// one FTRAN — EQ-row RHS changes revive like any other, which the old dense
// tableau could not do), the new objective is installed, and — provided the
// revived vertex is still primal feasible — the primal simplex walks it to
// the new optimum. This is the cross-round warm start of the scheduler's
// reused round model: between rounds the model keeps its shape but every
// cost, capacity RHS, and pair-forbidding bound changes. Shape changes,
// nonbasic columns stranded at infinite bounds, singular stored bases, and
// revived vertices knocked primal-infeasible by the new bounds/RHS all fall
// back to a cold solve (reusing the basis's allocations), so answers never
// depend on the warm path.
func (p *Problem) SolveReprice(b *Basis) (*Solution, error) {
	return p.solveReusing(b, func(s *simplex) (Status, bool) {
		if !s.repriceBase(p) {
			return Optimal, false
		}
		if !s.primalFeasible() {
			// Basic values out of bounds (capacity shrank, or a basic pair
			// got forbidden). Repairing feasibility from a stale vertex via
			// the dual simplex measurably costs more pivots than the
			// triangular crash start, so rebuild cold instead.
			return Optimal, false
		}
		s.repriceCost(p)
		// The old optimum survived the bound/RHS changes: the primal simplex
		// walks it to the new optimum, skipping tableau construction, the
		// crash, and phase 1 entirely (no dual feasibility needed at the
		// start of a primal run).
		return s.primal(s.nreal), true
	})
}

// solveReusing is the shared SolveWarm/SolveReprice driver: revive tries to
// reuse the basis's engine state and re-optimize, reporting (status, true) on
// a completed warm attempt; any doubt ((_, false), or a non-conclusive
// status) falls back to a cold solve that reuses the engine's allocations.
func (p *Problem) solveReusing(b *Basis, revive func(*simplex) (Status, bool)) (*Solution, error) {
	var recycled *simplex
	if b != nil && b.Valid() {
		s := b.s
		if s.nstruct == p.nvars && s.m == len(p.rows) {
			if st, attempted := revive(s); attempted {
				switch st {
				case Optimal:
					sol := s.extract(p)
					sol.Status = Optimal
					sol.WarmStarted = true
					p.finishSense(sol)
					return sol, nil
				case Infeasible:
					return &Solution{Status: Infeasible, Iters: s.iters, WarmStarted: true}, nil
				}
			}
		}
		// The stored state is stale (drift beyond what revive can absorb),
		// the wrong shape, or mid-run after an iteration limit: useless as a
		// warm start, but its allocations can back the cold solve.
		recycled = b.s
		b.s = nil
	}
	s := newSimplex(p, recycled)
	st := s.solveCold()
	sol := &Solution{Status: st, Iters: s.iters}
	if st == Optimal || st == IterLimit {
		ext := s.extract(p)
		sol.Objective = ext.Objective
		sol.X = ext.X
		if st == Optimal {
			sol.ReducedCosts = ext.ReducedCosts
		}
	}
	p.finishSense(sol)
	if b != nil && sol.Status == Optimal {
		b.s = s
	}
	return sol, nil
}

// finishSense converts the internal minimization objective back to the
// caller's sense.
func (p *Problem) finishSense(sol *Solution) {
	if p.sense == Maximize && (sol.Status == Optimal || sol.Status == IterLimit) {
		sol.Objective = -sol.Objective
	}
}
