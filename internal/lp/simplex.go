package lp

import "math"

// Column statuses of the bounded-variable simplex. Every column is either
// basic or sits at one of its finite bounds; columns with lo == hi are
// "fixed" and never priced.
const (
	statLower int8 = iota // nonbasic at lower bound
	statUpper             // nonbasic at upper bound
	statBasic
	statFixed // nonbasic with lo == hi: never priced, value is lo
)

// simplex is the dense bounded-variable simplex engine. Unlike the reference
// tableau (reference.go), variable bounds are enforced directly in the ratio
// test rather than materialized as constraint rows, so the tableau has one
// row per *constraint* only: O(m·n) instead of O((m+n)·n) for the WaterWise
// scheduling MILP where every assignment variable is bounded.
//
// The whole struct is a reusable Basis: after a solve it holds the final
// tableau (B⁻¹A), transformed RHS (B⁻¹b, bounds-independent), basis, column
// statuses, and reduced costs — everything a dual-simplex warm start needs
// after a bound change.
type simplex struct {
	m       int // constraint rows
	nstruct int // structural columns (the Problem's variables)
	nreal   int // structural + slack columns
	width   int // + artificial columns
	awidth  int // active width for row operations: width during phase 1,
	// then nreal once artificials are frozen (their columns go stale but
	// are never read again)
	stride int // row stride of a

	a      []float64 // m x width tableau, flat, row-major (current B⁻¹A)
	btab   []float64 // m: current B⁻¹b (independent of variable bounds)
	lo, hi []float64 // width: column bounds (slacks: [0,inf) / (-inf,0] / [0,0])
	cost   []float64 // width: minimization-space costs (artificials 0)
	z      []float64 // width: reduced costs of the active phase
	basis  []int     // m: basic column of each row
	status []int8    // width: statLower/statUpper/statBasic
	xB     []float64 // m: current value of each basic variable
	rhs0   []float64 // m: original row RHS at construction (drift check)

	eps     float64
	maxIter int
	iters   int // pivots + bound flips across all phases
}

const (
	feasTol = 1e-7 // primal feasibility tolerance on basic values
	dualTol = 1e-7 // dual feasibility tolerance on reduced costs
)

func inf() float64 { return math.Inf(1) }

// newSimplex builds the initial tableau for p in minimization space.
// Slack layout: one slack per LE/GE row (LE: [0,+inf), GE: (-inf,0], both
// with +1 coefficients), none for EQ rows. Rows whose slack cannot serve as
// the initial basic variable get an artificial column instead.
// recycled may carry a same-shape engine whose allocations can be reused
// (the round-to-round path of the scheduler: objective and RHS change, so
// the basis is useless, but the arrays are not). Only the tableau needs
// zeroing; every other slot is overwritten during construction.
func newSimplex(p *Problem, recycled *simplex) *simplex {
	m := len(p.rows)
	nstruct := p.nvars
	nSlack := 0
	for _, r := range p.rows {
		if r.Op != EQ {
			nSlack++
		}
	}
	nreal := nstruct + nSlack
	maxWidth := nreal + m // worst case: artificial in every row
	var s *simplex
	if recycled != nil && recycled.m == m && recycled.stride == maxWidth && recycled.nstruct == nstruct {
		s = recycled
		clear(s.a)
		s.nreal = nreal
		s.eps = p.epsTol
		s.iters = 0
	} else {
		s = &simplex{
			m: m, nstruct: nstruct, nreal: nreal, stride: maxWidth,
			a:      make([]float64, m*maxWidth),
			btab:   make([]float64, m),
			lo:     make([]float64, maxWidth),
			hi:     make([]float64, maxWidth),
			cost:   make([]float64, maxWidth),
			z:      make([]float64, maxWidth),
			basis:  make([]int, m),
			status: make([]int8, maxWidth),
			xB:     make([]float64, m),
			rhs0:   make([]float64, m),
			eps:    p.epsTol,
		}
	}
	copy(s.lo, p.lower)
	copy(s.hi, p.upper)
	objSign := 1.0
	if p.sense == Maximize {
		objSign = -1
	}
	for j := 0; j < nstruct; j++ {
		s.cost[j] = objSign * p.obj[j]
		if p.lower[j] == p.upper[j] {
			s.status[j] = statFixed
		} else {
			s.status[j] = statLower // structural lower bounds are always finite
		}
	}

	// Pass 1: fill rows and slacks, compute each row's residual at the
	// all-at-lower-bound point, and make slacks basic wherever that is
	// feasible. Rows whose slack cannot absorb the residual (and EQ rows)
	// stay pending: basis[i] == -1.
	resid := make([]float64, m)
	slack := nstruct
	for i, r := range p.rows {
		ai := s.a[i*s.stride:]
		rr := r.RHS
		for _, t := range r.Terms {
			ai[t.Var] += t.Coef
			rr -= t.Coef * s.lo[t.Var] // linear, so duplicates sum correctly
		}
		s.basis[i] = -1
		switch r.Op {
		case LE:
			ai[slack] = 1
			s.lo[slack], s.hi[slack] = 0, inf()
			if rr >= 0 {
				s.basis[i] = slack
				s.status[slack] = statBasic
				s.xB[i] = rr
			} else {
				s.status[slack] = statLower
			}
			slack++
		case GE:
			ai[slack] = 1
			s.lo[slack], s.hi[slack] = math.Inf(-1), 0
			if rr <= 0 {
				s.basis[i] = slack
				s.status[slack] = statBasic
				s.xB[i] = rr
			} else {
				s.status[slack] = statUpper
			}
			slack++
		}
		resid[i] = rr
		s.btab[i] = r.RHS
		s.rhs0[i] = r.RHS
	}

	// Pass 2: triangular crash — give pending rows a structural basic
	// column when that keeps the start primal feasible, avoiding both an
	// artificial variable and its phase-1 work. Cost-greedy selection means
	// e.g. an assignment row starts on its cheapest eligible variable, so
	// phase 2 begins near the optimum.
	s.crash(p, resid)

	// Pass 3: artificials for rows the crash could not cover.
	art := nreal
	for i := range p.rows {
		if s.basis[i] != -1 {
			continue
		}
		ai := s.a[i*s.stride:]
		rr := resid[i]
		if rr < 0 {
			// Normalize so the artificial's coefficient is +1 and its
			// initial value nonnegative: basic columns must be unit columns
			// for the reduced-cost and warm-start identities.
			for j := 0; j < nreal; j++ {
				ai[j] = -ai[j]
			}
			s.btab[i] = -s.btab[i]
			rr = -rr
		}
		ai[art] = 1
		s.lo[art], s.hi[art] = 0, inf()
		s.basis[i] = art
		s.status[art] = statBasic
		s.xB[i] = rr
		art++
	}
	s.width = art
	s.awidth = art
	s.maxIter = 200 * (s.m + s.width + 10)
	if p.maxIt > 0 {
		s.maxIter = p.maxIt
	}
	return s
}

// crash assigns structural basic columns to pending rows (basis[i] == -1)
// when a column exists whose only other nonzeros sit in slack-basic rows
// with enough slack room — a triangular structure, so each assignment is a
// two-or-three-row elimination, never disturbs other pending rows, and
// keeps the start primal feasible. For the WaterWise scheduling MILP this
// covers every Eq. 9 assignment row, eliminating phase 1 outright.
//
// Column occupancy is read from a sparse column index built off the original
// rows; columns that received fill-in from an earlier elimination are marked
// dirty and fall back to a dense tableau scan.
func (s *simplex) crash(p *Problem, resid []float64) {
	// Sparse column index over the original constraint matrix (counting
	// sort layout: colRows[colStart[j]:colStart[j+1]] lists j's rows).
	nnz := 0
	for _, r := range p.rows {
		nnz += len(r.Terms)
	}
	colStart := make([]int, s.nstruct+1)
	for _, r := range p.rows {
		for _, t := range r.Terms {
			colStart[t.Var+1]++
		}
	}
	for j := 0; j < s.nstruct; j++ {
		colStart[j+1] += colStart[j]
	}
	colRows := make([]int32, nnz)
	fill := append([]int(nil), colStart[:s.nstruct]...)
	for i, r := range p.rows {
		for _, t := range r.Terms {
			colRows[fill[t.Var]] = int32(i)
			fill[t.Var]++
		}
	}
	dirty := make([]bool, s.nstruct)
	inNZ := make([]bool, s.nreal) // scratch for installCrash dedup
	// Slack column of each row (-1 for EQ rows).
	rowSlack := make([]int, s.m)
	sc := s.nstruct
	for i, r := range p.rows {
		if r.Op == EQ {
			rowSlack[i] = -1
		} else {
			rowSlack[i] = sc
			sc++
		}
	}

	for r := range p.rows {
		if s.basis[r] != -1 {
			continue
		}
		arow := s.a[r*s.stride:]
		bestJ := -1
		var bestScore, bestDelta float64
		for _, term := range p.rows[r].Terms {
			j := term.Var
			if s.status[j] != statLower && s.status[j] != statUpper {
				continue
			}
			arj := arow[j]
			if math.Abs(arj) < 0.125 { // pivot stability threshold
				continue
			}
			delta := resid[r] / arj
			v := s.lo[j] + delta
			if v < s.lo[j] || v > s.hi[j] {
				continue
			}
			ok := true
			if dirty[j] {
				// Fill-in possible: scan the live tableau column.
				for i := 0; i < s.m; i++ {
					if i == r {
						continue
					}
					aij := s.a[i*s.stride+j]
					if aij == 0 {
						continue
					}
					if !s.crashRowOK(i, aij, delta) {
						ok = false
						break
					}
				}
			} else {
				for _, i32 := range colRows[colStart[j]:colStart[j+1]] {
					i := int(i32)
					if i == r {
						continue
					}
					aij := s.a[i*s.stride+j]
					if aij == 0 {
						continue
					}
					if !s.crashRowOK(i, aij, delta) {
						ok = false
						break
					}
				}
			}
			if !ok {
				continue
			}
			score := s.cost[j] * delta
			if bestJ == -1 || score < bestScore-1e-12 {
				bestJ, bestScore, bestDelta = j, score, delta
			}
		}
		if bestJ == -1 {
			continue // pass 3 installs an artificial
		}
		s.installCrash(p, r, bestJ, bestDelta, rowSlack[r], dirty, inNZ)
	}
}

// crashRowOK checks that making the candidate basic keeps row i's basic
// slack inside its bounds. Rows whose basic is pending (-1) or structural
// (an earlier crash) are ineligible.
func (s *simplex) crashRowOK(i int, aij, delta float64) bool {
	bi := s.basis[i]
	if bi < s.nstruct {
		return false
	}
	nv := s.xB[i] - aij*delta
	return nv >= s.lo[bi]-1e-9 && nv <= s.hi[bi]+1e-9
}

// installCrash makes column j basic in pending row r via a sparse
// elimination (only j's slack-basic rows are touched), moving j from its
// lower bound by delta. Pending rows are never modified, so row r still has
// its original sparsity: only its terms and its slack column need row
// operations. Every column of row r picks up fill-in in the eliminated
// rows and is marked dirty.
func (s *simplex) installCrash(p *Problem, r, j int, delta float64, slackCol int, dirty, inNZ []bool) {
	// Nonzero columns of row r: its sparse terms (deduplicated — a row may
	// repeat a variable) plus its slack (EQ rows have none).
	nz := make([]int, 0, len(p.rows[r].Terms)+1)
	for _, t := range p.rows[r].Terms {
		if inNZ[t.Var] {
			continue
		}
		inNZ[t.Var] = true
		nz = append(nz, t.Var)
		dirty[t.Var] = true
	}
	if slackCol >= 0 {
		nz = append(nz, slackCol)
	}
	defer func() {
		for _, k := range nz {
			if k < len(inNZ) {
				inNZ[k] = false
			}
		}
	}()
	prow := s.a[r*s.stride:]
	inv := 1 / prow[j]
	for _, k := range nz {
		prow[k] *= inv
	}
	prow[j] = 1 // exact
	s.btab[r] *= inv
	for i := 0; i < s.m; i++ {
		if i == r {
			continue
		}
		ai := s.a[i*s.stride:]
		f := ai[j]
		if f == 0 {
			continue
		}
		for _, k := range nz {
			ai[k] -= f * prow[k]
		}
		ai[j] = 0 // exact
		s.btab[i] -= f * s.btab[r]
		s.xB[i] -= f * delta
	}
	s.basis[r] = j
	s.status[j] = statBasic
	s.xB[r] = s.lo[j] + delta
}

// nbVal returns the current value of nonbasic column j.
func (s *simplex) nbVal(j int) float64 {
	if s.status[j] == statUpper {
		return s.hi[j]
	}
	return s.lo[j]
}

// computeZ resets the reduced-cost row for cost vector c:
// z = c - c_B·(B⁻¹A), exploiting that basic columns of the tableau are unit.
func (s *simplex) computeZ(c []float64) {
	copy(s.z, c[:s.awidth])
	for i := 0; i < s.m; i++ {
		cb := c[s.basis[i]]
		if cb == 0 {
			continue
		}
		ai := s.a[i*s.stride:]
		for j := 0; j < s.awidth; j++ {
			s.z[j] -= cb * ai[j]
		}
	}
}

// pivot performs a Gauss-Jordan pivot on (row, col), updating the tableau,
// transformed RHS, reduced costs, basis, and statuses. enterVal is the value
// the entering column takes; the leaving column's new status is leaveStat.
func (s *simplex) pivot(row, col int, enterVal float64, leaveStat int8) {
	prow := s.a[row*s.stride:]
	invPv := 1 / prow[col]
	for j := 0; j < s.awidth; j++ {
		prow[j] *= invPv
	}
	prow[col] = 1 // exact
	s.btab[row] *= invPv
	for i := 0; i < s.m; i++ {
		if i == row {
			continue
		}
		ai := s.a[i*s.stride:]
		f := ai[col]
		if f == 0 {
			continue
		}
		for j := 0; j < s.awidth; j++ {
			ai[j] -= f * prow[j]
		}
		ai[col] = 0 // exact
		s.btab[i] -= f * s.btab[row]
	}
	zE := s.z[col]
	if zE != 0 {
		for j := 0; j < s.awidth; j++ {
			s.z[j] -= zE * prow[j]
		}
	}
	s.z[col] = 0 // exact
	s.status[s.basis[row]] = leaveStat
	s.basis[row] = col
	s.status[col] = statBasic
	s.xB[row] = enterVal
}

// primal runs the bounded-variable primal simplex to optimality of the
// current z (which must correspond to cost vector c via computeZ). priceLim
// restricts entering candidates to columns < priceLim (phase 2 excludes
// artificials this way; their bounds are also fixed to [0,0]).
func (s *simplex) primal(priceLim int) Status {
	blandAfter := s.maxIter / 2
	for ; s.iters < s.maxIter; s.iters++ {
		useBland := s.iters >= blandAfter
		enter, dir := -1, 1.0
		best := s.eps
		for j := 0; j < priceLim; j++ {
			st := s.status[j]
			var score float64
			if st == statLower && s.z[j] < -s.eps {
				score = -s.z[j]
			} else if st == statUpper && s.z[j] > s.eps {
				score = s.z[j]
			} else {
				continue
			}
			if useBland {
				enter = j
				if st == statUpper {
					dir = -1
				} else {
					dir = 1
				}
				break
			}
			if score > best {
				best = score
				enter = j
				if st == statUpper {
					dir = -1
				} else {
					dir = 1
				}
			}
		}
		if enter == -1 {
			return Optimal
		}

		// Ratio test: the entering variable moves by t >= 0 in direction
		// dir, limited by its own opposite bound and by basic variables
		// hitting theirs.
		tBound := s.hi[enter] - s.lo[enter] // +inf when unbounded above
		rowT := inf()
		leave, leaveAtUpper := -1, false
		col := enter
		for i := 0; i < s.m; i++ {
			alpha := dir * s.a[i*s.stride+col]
			var r float64
			var atUpper bool
			if alpha > s.eps {
				l := s.lo[s.basis[i]]
				if math.IsInf(l, -1) {
					continue
				}
				r = (s.xB[i] - l) / alpha
			} else if alpha < -s.eps {
				u := s.hi[s.basis[i]]
				if math.IsInf(u, 1) {
					continue
				}
				r = (u - s.xB[i]) / -alpha
				atUpper = true
			} else {
				continue
			}
			if r < 0 {
				r = 0 // numerical: basic value marginally out of bounds
			}
			if r < rowT-s.eps || (r <= rowT+s.eps && (leave == -1 || s.basis[i] < s.basis[leave])) {
				if r < rowT {
					rowT = r
				}
				leave = i
				leaveAtUpper = atUpper
			}
		}
		if math.IsInf(tBound, 1) && leave == -1 {
			return Unbounded
		}
		if tBound < rowT {
			// Bound flip: the entering variable traverses to its other
			// bound without any basis change.
			for i := 0; i < s.m; i++ {
				s.xB[i] -= dir * tBound * s.a[i*s.stride+col]
			}
			if s.status[enter] == statLower {
				s.status[enter] = statUpper
			} else {
				s.status[enter] = statLower
			}
			continue
		}
		t := rowT
		enterVal := s.nbVal(enter) + dir*t
		for i := 0; i < s.m; i++ {
			if i != leave {
				s.xB[i] -= dir * t * s.a[i*s.stride+col]
			}
		}
		leaveStat := statLower
		if leaveAtUpper {
			leaveStat = statUpper
		}
		s.pivot(leave, enter, enterVal, leaveStat)
	}
	return IterLimit
}

// dual runs the dual simplex until primal feasibility is restored (returns
// Optimal), the problem is proven primal-infeasible, or the iteration budget
// runs out. It requires the current point to be dual feasible (z consistent
// with the column statuses), which holds after any bound change to an
// optimal basis because bounds enter neither z nor the tableau.
func (s *simplex) dual(priceLim int) Status {
	for ; s.iters < s.maxIter; s.iters++ {
		// Leaving row: largest bound violation among basic variables.
		row := -1
		below := false
		worst := feasTol
		for i := 0; i < s.m; i++ {
			bi := s.basis[i]
			if v := s.lo[bi] - s.xB[i]; v > worst {
				worst = v
				row = i
				below = true
			}
			if v := s.xB[i] - s.hi[bi]; v > worst {
				worst = v
				row = i
				below = false
			}
		}
		if row == -1 {
			return Optimal // primal feasible (and still dual feasible)
		}
		arow := s.a[row*s.stride:]
		// Entering column: dual ratio test. Eligibility keeps the step
		// direction consistent with the leaving variable returning to its
		// violated bound; the min |z/alpha| choice keeps z dual feasible.
		enter := -1
		bestRatio := inf()
		for j := 0; j < priceLim; j++ {
			st := s.status[j]
			if st != statLower && st != statUpper {
				continue
			}
			alpha := arow[j]
			var ok bool
			if below {
				ok = (st == statLower && alpha < -s.eps) || (st == statUpper && alpha > s.eps)
			} else {
				ok = (st == statLower && alpha > s.eps) || (st == statUpper && alpha < -s.eps)
			}
			if !ok {
				continue
			}
			r := math.Abs(s.z[j] / alpha)
			if r < bestRatio-s.eps || (r <= bestRatio+s.eps && (enter == -1 || j < enter)) {
				if r < bestRatio {
					bestRatio = r
				}
				enter = j
			}
		}
		if enter == -1 {
			return Infeasible
		}
		var target float64
		var leaveStat int8
		if below {
			target = s.lo[s.basis[row]]
			leaveStat = statLower
		} else {
			target = s.hi[s.basis[row]]
			leaveStat = statUpper
		}
		t := (s.xB[row] - target) / arow[enter]
		col := enter
		for i := 0; i < s.m; i++ {
			if i != row {
				s.xB[i] -= t * s.a[i*s.stride+col]
			}
		}
		enterVal := s.nbVal(enter) + t
		s.pivot(row, enter, enterVal, leaveStat)
	}
	return IterLimit
}

// driveOutArtificials pivots zero-valued basic artificials out of the basis
// wherever a usable non-artificial column exists; rows with no such column
// are redundant and keep their artificial basic at zero (its bounds are then
// fixed so it can never move again).
func (s *simplex) driveOutArtificials() {
	for i := 0; i < s.m; i++ {
		if s.basis[i] < s.nreal {
			continue
		}
		ai := s.a[i*s.stride:]
		for j := 0; j < s.nreal; j++ {
			if (s.status[j] != statLower && s.status[j] != statUpper) || math.Abs(ai[j]) <= s.eps {
				continue
			}
			// Degenerate pivot: the artificial leaves at 0, the entering
			// column stays at its current bound value.
			s.pivot(i, j, s.nbVal(j), statLower)
			break
		}
	}
	// Freeze every artificial column at zero for phase 2 and beyond.
	for j := s.nreal; j < s.width; j++ {
		s.lo[j], s.hi[j] = 0, 0
		s.cost[j] = 0
		if s.status[j] != statBasic {
			s.status[j] = statFixed
		}
	}
}

// solveCold runs two-phase bounded simplex from the initial basis.
func (s *simplex) solveCold() Status {
	if s.width > s.nreal {
		phase1 := make([]float64, s.width)
		infeasSum := 0.0
		for j := s.nreal; j < s.width; j++ {
			phase1[j] = 1
		}
		for i := 0; i < s.m; i++ {
			if s.basis[i] >= s.nreal {
				infeasSum += s.xB[i]
			}
		}
		if infeasSum > 0 {
			s.computeZ(phase1)
			st := s.primal(s.width)
			if st == IterLimit {
				return IterLimit
			}
			if st == Unbounded {
				// Phase-1 objective is bounded below by 0; this means
				// numerical trouble. Report infeasible to stay safe.
				return Infeasible
			}
			sum := 0.0
			for i := 0; i < s.m; i++ {
				if s.basis[i] >= s.nreal {
					sum += s.xB[i]
				}
			}
			if sum > 1e-7 {
				return Infeasible
			}
		}
		s.driveOutArtificials()
	}
	// Artificial columns are frozen at zero from here on; stop paying for
	// them in every row operation.
	s.awidth = s.nreal
	s.computeZ(s.cost)
	return s.primal(s.nreal)
}

// extract maps the current point back to the Problem's variable space.
func (s *simplex) extract(p *Problem) *Solution {
	x := make([]float64, s.nstruct)
	for j := 0; j < s.nstruct; j++ {
		if s.status[j] != statBasic {
			x[j] = s.nbVal(j)
		}
	}
	for i, bi := range s.basis {
		if bi < s.nstruct {
			x[bi] = s.xB[i]
		}
	}
	obj := 0.0
	for j := 0; j < s.nstruct; j++ {
		obj += s.cost[j] * x[j]
	}
	rc := make([]float64, s.nstruct)
	copy(rc, s.z[:s.nstruct])
	return &Solution{Objective: obj, X: x, Iters: s.iters, ReducedCosts: rc}
}

// clone deep-copies the engine state.
func (s *simplex) clone() *simplex {
	c := *s
	c.a = append([]float64(nil), s.a...)
	c.btab = append([]float64(nil), s.btab...)
	c.lo = append([]float64(nil), s.lo...)
	c.hi = append([]float64(nil), s.hi...)
	c.cost = append([]float64(nil), s.cost...)
	c.z = append([]float64(nil), s.z...)
	c.basis = append([]int(nil), s.basis...)
	c.status = append([]int8(nil), s.status...)
	c.xB = append([]float64(nil), s.xB...)
	c.rhs0 = append([]float64(nil), s.rhs0...)
	return &c
}

// warmApply installs p's (possibly changed) structural bounds into a
// previously optimal engine state and recomputes the basic values. It
// returns false when the stored state cannot be warm started (a nonbasic
// column would sit at an infinite bound, or dual feasibility is lost —
// e.g. the objective changed since the basis was built).
func (s *simplex) warmApply(p *Problem) bool {
	// The stored tableau, reduced costs, and transformed RHS are only valid
	// if the objective and every row RHS are unchanged since the basis was
	// built — verify rather than trust the caller (bound changes are the
	// only supported mutation).
	objSign := 1.0
	if p.sense == Maximize {
		objSign = -1
	}
	for j := 0; j < s.nstruct; j++ {
		if s.cost[j] != objSign*p.obj[j] {
			return false
		}
	}
	for i := range p.rows {
		if s.rhs0[i] != p.rows[i].RHS {
			return false
		}
	}
	if !s.normalizeNonbasic(p, s.width, true) {
		return false
	}
	s.computeXB()
	s.iters = 0
	return true
}

// normalizeNonbasic installs p's variable bounds and makes every nonbasic
// column's status (up to limit) consistent with its box: columns whose box
// closed become fixed, previously fixed columns whose box re-opened (a
// sibling branch path, or a pair un-forbidden between rounds) restart at
// their lower bound. checkDual additionally verifies the stored reduced
// costs remain dual feasible under the new statuses — the SolveWarm
// contract, where z is trusted as-is; the reprice path recomputes z instead
// and needs only bound consistency. Returns false — cold solve — when a
// nonbasic column would sit at an infinite bound or (checkDual) dual
// feasibility is lost.
func (s *simplex) normalizeNonbasic(p *Problem, limit int, checkDual bool) bool {
	copy(s.lo[:s.nstruct], p.lower)
	copy(s.hi[:s.nstruct], p.upper)
	for j := 0; j < limit; j++ {
		st := s.status[j]
		if st == statBasic {
			continue
		}
		if s.lo[j] == s.hi[j] {
			s.status[j] = statFixed
			continue
		}
		if st == statFixed {
			st = statLower
			s.status[j] = st
		}
		if st == statLower && math.IsInf(s.lo[j], -1) {
			return false
		}
		if st == statUpper && math.IsInf(s.hi[j], 1) {
			return false
		}
		if checkDual {
			if st == statLower && s.z[j] < -dualTol {
				return false
			}
			if st == statUpper && s.z[j] > dualTol {
				return false
			}
		}
	}
	return true
}

// solveWarm re-optimizes after warmApply: dual simplex back to primal
// feasibility, then a primal cleanup pass (a no-op when the dual run ends
// at an optimal point, which is the common case).
func (s *simplex) solveWarm() Status {
	st := s.dual(s.nreal)
	if st != Optimal {
		return st
	}
	return s.primal(s.nreal)
}

// repriceBase revives a previously optimal engine for a problem whose
// constraint RHS and variable bounds changed since the basis was stored,
// while *keeping the stored objective and reduced costs* — the first stage of
// the cross-round re-pricing warm start. Each row's RHS delta folds into the
// transformed RHS through that row's slack column of the tableau (the slack's
// column *is* B⁻¹e_i up to the row's phase-1 sign flip, which btab shares, so
// the signs cancel); bounds are reinstalled, statuses normalized, and the
// basic values recomputed. It returns false — leaving the caller to solve
// cold — when the state cannot be revived: a structural mismatch, an RHS
// change on a slackless (EQ) row, or a nonbasic column parked at an infinite
// bound.
func (s *simplex) repriceBase(p *Problem) bool {
	// A valid basis has always completed a cold phase 1, so the active width
	// excludes the (stale, frozen) artificial columns.
	if s.awidth != s.nreal {
		return false
	}
	nSlack := 0
	for _, r := range p.rows {
		if r.Op != EQ {
			nSlack++
		}
	}
	if s.nreal != s.nstruct+nSlack {
		return false
	}
	// RHS deltas first: they touch only btab, which does not depend on costs,
	// statuses, or bounds. EQ rows have no slack column to route a delta
	// through, so a changed EQ RHS forces a cold solve.
	slack := s.nstruct
	for i, r := range p.rows {
		sc := -1
		if r.Op != EQ {
			sc = slack
			slack++
		}
		d := r.RHS - s.rhs0[i]
		if d == 0 {
			continue
		}
		if sc < 0 {
			return false
		}
		for k := 0; k < s.m; k++ {
			s.btab[k] += d * s.a[k*s.stride+sc]
		}
		s.rhs0[i] = r.RHS
	}
	// New bounds and consistent nonbasic statuses; no dual check — the
	// caller recomputes z for the new objective, and the primal phase does
	// not need dual feasibility at its start.
	if !s.normalizeNonbasic(p, s.nreal, false) {
		return false
	}
	s.computeXB()
	s.iters = 0
	return true
}

// computeXB rebuilds the basic values from the transformed RHS and the
// current nonbasic point: xB = B⁻¹b − Σ_nonbasic (B⁻¹A_j)·value_j.
func (s *simplex) computeXB() {
	copy(s.xB, s.btab)
	for j := 0; j < s.width; j++ {
		if s.status[j] == statBasic {
			continue
		}
		v := s.nbVal(j)
		if v == 0 {
			continue
		}
		for i := 0; i < s.m; i++ {
			s.xB[i] -= s.a[i*s.stride+j] * v
		}
	}
}

// primalFeasible reports whether every basic value sits within its column's
// bounds (to feasTol).
func (s *simplex) primalFeasible() bool {
	for i := 0; i < s.m; i++ {
		bi := s.basis[i]
		if s.xB[i] < s.lo[bi]-feasTol || s.xB[i] > s.hi[bi]+feasTol {
			return false
		}
	}
	return true
}

// repriceCost installs p's (possibly changed) objective into the engine and
// recomputes the reduced costs (z = c − c_B·B⁻¹A) — the second stage of the
// re-pricing warm start, run once the point is primal feasible.
func (s *simplex) repriceCost(p *Problem) {
	objSign := 1.0
	if p.sense == Maximize {
		objSign = -1
	}
	for j := 0; j < s.nstruct; j++ {
		s.cost[j] = objSign * p.obj[j]
	}
	s.computeZ(s.cost)
}
