package lp

import "math"

// Column statuses of the bounded-variable simplex. Every column is either
// basic or sits at one of its finite bounds; columns with lo == hi are
// "fixed" and never priced.
const (
	statLower int8 = iota // nonbasic at lower bound
	statUpper             // nonbasic at upper bound
	statBasic
	statFixed // nonbasic with lo == hi: never priced, value is lo
)

// simplex is the sparse revised bounded-variable simplex engine. Where the
// previous generation of this file maintained a dense B⁻¹A tableau — making
// every pivot O(m·n) and every warm-start revival O(m²·n) — this engine keeps
// the constraint matrix in compressed sparse column form (shared with the
// Problem, never copied), represents the basis inverse implicitly as a sparse
// LU factorization (lu.go) extended by an eta file of product-form updates,
// and computes the vectors each pivot needs by FTRAN/BTRAN triangular solves:
//
//   - pricing:     y = B⁻ᵀc_B (one BTRAN), then d_j = c_j − y·a_j per
//     candidate column, scanned with a rotating partial-pricing cursor;
//   - pivot column: w = B⁻¹a_q (one FTRAN) feeds the ratio test and the
//     basic-value update;
//   - dual pivots:  ρ = B⁻ᵀe_r (one BTRAN) yields the leaving row's tableau
//     row as ρ·a_j per column.
//
// Each pivot appends one eta; after refactorEvery of them the basis is
// refactorized from its column headers and the basic values are recomputed,
// which bounds both the eta file's growth and numerical drift. Pivot cost
// therefore tracks the matrix's nonzero count, not m·n — for the WaterWise
// round MILP (assignment rows + capacity rows, ~2 nonzeros per column) a
// thousand-job round prices and pivots in microseconds where the dense
// tableau needed a 90 MB clear per solve.
//
// The struct doubles as the reusable Basis: between solves it keeps only the
// basis headers (basis, statuses, bounds, costs, original RHS). Warm starts
// revive state by refactorizing from those headers and re-solving B⁻¹b /
// re-pricing reduced costs — no tableau snapshot exists to replay.
type simplex struct {
	m       int // constraint rows
	nstruct int // structural columns (the Problem's variables)
	nreal   int // structural + slack columns
	width   int // + artificial columns

	a        *csc      // structural columns, shared with the Problem
	slackRow []int32   // column nstruct+k -> its row (slack coefficient +1)
	artRow   []int32   // column nreal+k -> its row
	artSign  []float64 // artificial coefficient (±1, making its value ≥ 0)

	lo, hi []float64 // width: column bounds (slacks: [0,inf) / (-inf,0] / [0,0])
	cost   []float64 // width: minimization-space costs (artificials 0)
	status []int8    // width
	basis  []int     // m: column basic at position k (position order is
	// arbitrary and re-permuted at each refactorization)
	xB   []float64 // m: current value of basis[k]
	rhs0 []float64 // m: row RHS at construction (drift check + B⁻¹b source)

	lu luFactor
	// eta file: product-form updates since the last refactorization. Eta e
	// records pivot position etaPivPos[e] with pivot value etaPivVal[e] and
	// off-pivot entries etaPos/etaVal[etaStart[e]:etaStart[e+1]].
	etaStart  []int32
	etaPos    []int32
	etaVal    []float64
	etaPivPos []int32
	etaPivVal []float64

	// scratch, len m
	w         []float64 // FTRAN result (entering column in basis coordinates)
	y         []float64 // BTRAN result, original-row indexed
	rho       []float64 // BTRAN of a unit vector (dual pivot row)
	zs        []float64 // BTRAN intermediate, basis-position indexed
	rhsW      []float64 // computeXB right-hand side accumulator
	permBasis []int     // refactor: counting-sorted basis order
	permXB    []float64 // refactor: xB permuted alongside
	nnzCnt    []int32   // refactor: counting-sort buckets

	p1cost []float64 // width: phase-1 cost vector (1 on artificials)

	eps         float64
	maxIter     int
	iters       int // pivots + bound flips across all phases
	priceCursor int // partial-pricing rotation
	// clean marks an identity revival: warmApply found nothing changed since
	// the stored optimal state, so solveWarm returns it verbatim (bitwise
	// rerun determinism) instead of re-deriving it through a fresh
	// factorization's rounding.
	clean bool
}

const (
	feasTol       = 1e-7  // primal feasibility tolerance on basic values
	dualTol       = 1e-7  // dual feasibility tolerance on reduced costs
	etaDropTol    = 1e-12 // eta entries below this are dropped
	refactorEvery = 64    // etas accumulated before refactorizing
)

func inf() float64 { return math.Inf(1) }

// newSimplex builds the engine for p in minimization space. Slack layout: one
// slack per LE/GE row (LE: [0,+inf), GE: (-inf,0], both with +1
// coefficients), none for EQ rows. Rows whose slack cannot serve as the
// initial basic variable get a structural column via the triangular crash, or
// failing that an artificial column. recycled may carry a same-shape engine
// whose allocations are reused (the scheduler's round-to-round path:
// objective and RHS change, so the basis is useless, but the arrays are not).
func newSimplex(p *Problem, recycled *simplex) *simplex {
	m := len(p.rows)
	nstruct := p.nvars
	nSlack := 0
	for _, r := range p.rows {
		if r.Op != EQ {
			nSlack++
		}
	}
	nreal := nstruct + nSlack
	maxWidth := nreal + m // worst case: artificial in every row
	var s *simplex
	if recycled != nil && recycled.m == m && recycled.nstruct == nstruct && recycled.nreal == nreal {
		s = recycled
	} else {
		s = &simplex{
			m: m, nstruct: nstruct, nreal: nreal,
			slackRow: make([]int32, nSlack),
			lo:       make([]float64, maxWidth),
			hi:       make([]float64, maxWidth),
			cost:     make([]float64, maxWidth),
			status:   make([]int8, maxWidth),
			basis:    make([]int, m),
			xB:       make([]float64, m),
			rhs0:     make([]float64, m),
		}
	}
	s.a = p.structCSC()
	s.eps = p.epsTol
	s.iters = 0
	s.priceCursor = 0
	s.clean = false
	s.artRow = s.artRow[:0]
	s.artSign = s.artSign[:0]
	s.ensureScratch()

	copy(s.lo, p.lower)
	copy(s.hi, p.upper)
	objSign := 1.0
	if p.sense == Maximize {
		objSign = -1
	}
	for j := 0; j < nstruct; j++ {
		s.cost[j] = objSign * p.obj[j]
		if p.lower[j] == p.upper[j] {
			s.status[j] = statFixed
		} else {
			s.status[j] = statLower // structural lower bounds are always finite
		}
	}

	// Pass 1: slack columns, plus each row's residual at the
	// all-at-lower-bound point. Slacks go basic wherever that is feasible;
	// other rows stay pending (basis position -1).
	resid := s.rhsW // scratch alias: consumed before computeXB runs
	for i, r := range p.rows {
		resid[i] = r.RHS
		s.rhs0[i] = r.RHS
		s.basis[i] = -1
		s.xB[i] = 0
	}
	for j := 0; j < nstruct; j++ {
		lj := s.lo[j]
		if lj == 0 {
			continue
		}
		for t := s.a.colPtr[j]; t < s.a.colPtr[j+1]; t++ {
			resid[s.a.rowIdx[t]] -= s.a.val[t] * lj
		}
	}
	slack := nstruct
	for i, r := range p.rows {
		switch r.Op {
		case LE:
			s.slackRow[slack-nstruct] = int32(i)
			s.lo[slack], s.hi[slack] = 0, inf()
			if resid[i] >= 0 {
				s.basis[i] = slack
				s.status[slack] = statBasic
				s.xB[i] = resid[i]
			} else {
				s.status[slack] = statLower
			}
			slack++
		case GE:
			s.slackRow[slack-nstruct] = int32(i)
			s.lo[slack], s.hi[slack] = math.Inf(-1), 0
			if resid[i] <= 0 {
				s.basis[i] = slack
				s.status[slack] = statBasic
				s.xB[i] = resid[i]
			} else {
				s.status[slack] = statUpper
			}
			slack++
		}
	}

	// Pass 2: triangular crash — give pending rows a structural basic column
	// when that keeps the start primal feasible, avoiding both an artificial
	// variable and its phase-1 work. Cost-greedy selection means e.g. an
	// assignment row starts on its cheapest eligible variable, so phase 2
	// begins near the optimum.
	s.crash(p, resid)

	// Pass 3: artificials for rows the crash could not cover. The artificial
	// coefficient takes the residual's sign so its starting value is ≥ 0 (no
	// row normalization needed — the revised engine never rewrites rows).
	art := nreal
	for i := range p.rows {
		if s.basis[i] != -1 {
			continue
		}
		sign, val := 1.0, resid[i]
		if val < 0 {
			sign, val = -1, -val
		}
		s.artRow = append(s.artRow, int32(i))
		s.artSign = append(s.artSign, sign)
		s.lo[art], s.hi[art] = 0, inf()
		s.cost[art] = 0
		s.basis[i] = art
		s.status[art] = statBasic
		s.xB[i] = val
		art++
	}
	s.width = art
	s.maxIter = 200 * (s.m + s.width + 10)
	if p.maxIt > 0 {
		s.maxIter = p.maxIt
	}
	return s
}

// ensureScratch sizes the per-solve work vectors (clones drop them; recycled
// engines keep them).
func (s *simplex) ensureScratch() {
	if len(s.w) == s.m && s.p1cost != nil && len(s.p1cost) >= s.nreal+s.m {
		return
	}
	s.w = make([]float64, s.m)
	s.y = make([]float64, s.m)
	s.rho = make([]float64, s.m)
	s.zs = make([]float64, s.m)
	s.rhsW = make([]float64, s.m)
	s.permBasis = make([]int, s.m)
	s.permXB = make([]float64, s.m)
	s.p1cost = make([]float64, s.nreal+s.m)
}

// colDot returns y·a_j for an original-row-indexed vector y.
func (s *simplex) colDot(j int, y []float64) float64 {
	if j < s.nstruct {
		a := s.a
		sum := 0.0
		for t := a.colPtr[j]; t < a.colPtr[j+1]; t++ {
			sum += a.val[t] * y[a.rowIdx[t]]
		}
		return sum
	}
	if j < s.nreal {
		return y[s.slackRow[j-s.nstruct]]
	}
	k := j - s.nreal
	return s.artSign[k] * y[s.artRow[k]]
}

// colAddInto accumulates f·a_j into out (original-row indexed).
func (s *simplex) colAddInto(j int, f float64, out []float64) {
	if j < s.nstruct {
		a := s.a
		for t := a.colPtr[j]; t < a.colPtr[j+1]; t++ {
			out[a.rowIdx[t]] += a.val[t] * f
		}
		return
	}
	if j < s.nreal {
		out[s.slackRow[j-s.nstruct]] += f
		return
	}
	k := j - s.nreal
	out[s.artRow[k]] += s.artSign[k] * f
}

// colScatter emits column j's entries.
func (s *simplex) colScatter(j int, emit func(row int32, v float64)) {
	if j < s.nstruct {
		a := s.a
		for t := a.colPtr[j]; t < a.colPtr[j+1]; t++ {
			emit(a.rowIdx[t], a.val[t])
		}
		return
	}
	if j < s.nreal {
		emit(s.slackRow[j-s.nstruct], 1)
		return
	}
	k := j - s.nreal
	emit(s.artRow[k], s.artSign[k])
}

// colNNZ is the entry count of column j.
func (s *simplex) colNNZ(j int) int {
	if j < s.nstruct {
		return s.a.nnzCol(j)
	}
	return 1
}

// at reads the (summed) coefficient of structural column j in row i from the
// CSC index (binary search over the column's sorted rows).
func (s *simplex) at(i, j int) float64 {
	a := s.a
	lo, hi := int(a.colPtr[j]), int(a.colPtr[j+1])
	for lo < hi {
		mid := (lo + hi) / 2
		switch {
		case a.rowIdx[mid] < int32(i):
			lo = mid + 1
		case a.rowIdx[mid] > int32(i):
			hi = mid
		default:
			return a.val[mid]
		}
	}
	return 0
}

// crash assigns structural basic columns to pending rows (basis[i] == -1)
// when a column exists whose only other nonzeros sit in slack-basic rows with
// enough slack room — a triangular structure, so the start stays primal
// feasible and the initial basis factorizes with no fill. For the WaterWise
// scheduling MILP this covers every Eq. 9 assignment row, eliminating phase 1
// outright. Unlike the dense engine's crash, no elimination is performed —
// the LU factorization absorbs the structure — so installing a column only
// updates the affected slack rows' basic values.
func (s *simplex) crash(p *Problem, resid []float64) {
	for r := range p.rows {
		if s.basis[r] != -1 {
			continue
		}
		bestJ := -1
		var bestScore, bestDelta float64
		for _, term := range p.rows[r].Terms {
			j := term.Var
			if s.status[j] != statLower && s.status[j] != statUpper {
				continue
			}
			arj := s.at(r, j)
			if math.Abs(arj) < 0.125 { // pivot stability threshold
				continue
			}
			delta := resid[r] / arj
			v := s.lo[j] + delta
			if v < s.lo[j] || v > s.hi[j] {
				continue
			}
			ok := true
			a := s.a
			for t := a.colPtr[j]; t < a.colPtr[j+1]; t++ {
				i := int(a.rowIdx[t])
				if i == r {
					continue
				}
				if !s.crashRowOK(i, a.val[t], delta) {
					ok = false
					break
				}
			}
			if !ok {
				continue
			}
			score := s.cost[j] * delta
			if bestJ == -1 || score < bestScore-1e-12 {
				bestJ, bestScore, bestDelta = j, score, delta
			}
		}
		if bestJ == -1 {
			continue // pass 3 installs an artificial
		}
		// Install: column bestJ becomes basic in row r at lo+delta; every
		// slack-basic row it touches absorbs the move.
		a := s.a
		for t := a.colPtr[bestJ]; t < a.colPtr[bestJ+1]; t++ {
			i := int(a.rowIdx[t])
			if i != r {
				s.xB[i] -= a.val[t] * bestDelta
			}
		}
		s.basis[r] = bestJ
		s.status[bestJ] = statBasic
		s.xB[r] = s.lo[bestJ] + bestDelta
	}
}

// crashRowOK checks that making the candidate basic keeps row i's basic slack
// inside its bounds. Rows whose basic is pending (-1) or structural (an
// earlier crash) are ineligible.
func (s *simplex) crashRowOK(i int, aij, delta float64) bool {
	bi := s.basis[i]
	if bi < s.nstruct {
		return false
	}
	nv := s.xB[i] - aij*delta
	return nv >= s.lo[bi]-1e-9 && nv <= s.hi[bi]+1e-9
}

// nbVal returns the current value of nonbasic column j.
func (s *simplex) nbVal(j int) float64 {
	if s.status[j] == statUpper {
		return s.hi[j]
	}
	return s.lo[j]
}

// refactor rebuilds the LU factorization from the current basis headers and
// clears the eta file. Basis positions are re-permuted by ascending column
// nonzero count first (singleton slack/artificial columns pivot their rows
// immediately, shrinking the kernel the factorization has to order itself).
// Returns false when the basis is numerically singular.
func (s *simplex) refactor() bool {
	s.ensureScratch()
	m := s.m
	// Stable counting sort of basis positions by column nonzero count, into
	// pooled scratch (this runs every refactorEvery pivots — no allocations).
	maxNNZ := 1
	for k := 0; k < m; k++ {
		if n := s.colNNZ(s.basis[k]); n > maxNNZ {
			maxNNZ = n
		}
	}
	if cap(s.nnzCnt) < maxNNZ+2 {
		s.nnzCnt = make([]int32, maxNNZ+2)
	}
	cnt := s.nnzCnt[:maxNNZ+2]
	for i := range cnt {
		cnt[i] = 0
	}
	for k := 0; k < m; k++ {
		cnt[s.colNNZ(s.basis[k])+1]++
	}
	for i := 1; i < len(cnt); i++ {
		cnt[i] += cnt[i-1]
	}
	nb, nx := s.permBasis[:m], s.permXB[:m]
	for k := 0; k < m; k++ {
		n := s.colNNZ(s.basis[k])
		nb[cnt[n]] = s.basis[k]
		nx[cnt[n]] = s.xB[k]
		cnt[n]++
	}
	copy(s.basis, nb)
	copy(s.xB, nx)
	s.clearEtas()
	return s.lu.factorize(m, func(pos int, emit func(row int32, v float64)) {
		s.colScatter(s.basis[pos], emit)
	})
}

func (s *simplex) clearEtas() {
	s.etaStart = append(s.etaStart[:0], 0)
	s.etaPos = s.etaPos[:0]
	s.etaVal = s.etaVal[:0]
	s.etaPivPos = s.etaPivPos[:0]
	s.etaPivVal = s.etaPivVal[:0]
}

func (s *simplex) etaCount() int { return len(s.etaPivPos) }

// appendEta records the product-form update for a pivot at basis position r;
// s.w must hold the FTRAN'd entering column.
func (s *simplex) appendEta(r int) {
	for k, v := range s.w {
		if k == r || (v < etaDropTol && v > -etaDropTol) {
			continue
		}
		s.etaPos = append(s.etaPos, int32(k))
		s.etaVal = append(s.etaVal, v)
	}
	s.etaPivPos = append(s.etaPivPos, int32(r))
	s.etaPivVal = append(s.etaPivVal, s.w[r])
	s.etaStart = append(s.etaStart, int32(len(s.etaPos)))
}

// applyEtasFTRAN finishes an FTRAN: x (basis-position indexed) already solved
// against the base factorization is pushed through the eta updates in order.
func (s *simplex) applyEtasFTRAN(x []float64) {
	for e := 0; e < len(s.etaPivPos); e++ {
		r := s.etaPivPos[e]
		p := x[r] / s.etaPivVal[e]
		x[r] = p
		if p == 0 {
			continue
		}
		for t := s.etaStart[e]; t < s.etaStart[e+1]; t++ {
			x[s.etaPos[t]] -= s.etaVal[t] * p
		}
	}
}

// applyEtasBTRAN starts a BTRAN: z (basis-position indexed) absorbs the eta
// updates in reverse before the base factorization's transpose solve.
func (s *simplex) applyEtasBTRAN(z []float64) {
	for e := len(s.etaPivPos) - 1; e >= 0; e-- {
		r := s.etaPivPos[e]
		acc := z[r]
		for t := s.etaStart[e]; t < s.etaStart[e+1]; t++ {
			acc -= s.etaVal[t] * z[s.etaPos[t]]
		}
		z[r] = acc / s.etaPivVal[e]
	}
}

// ftranColumn computes w = B⁻¹a_j into s.w. The column is scattered into
// pivot coordinates inline (no closure) — this runs once per pivot.
func (s *simplex) ftranColumn(j int) {
	x := s.w
	for i := range x {
		x[i] = 0
	}
	pinv := s.lu.pinv
	if j < s.nstruct {
		a := s.a
		for t := a.colPtr[j]; t < a.colPtr[j+1]; t++ {
			x[pinv[a.rowIdx[t]]] += a.val[t]
		}
	} else if j < s.nreal {
		x[pinv[s.slackRow[j-s.nstruct]]] += 1
	} else {
		k := j - s.nreal
		x[pinv[s.artRow[k]]] += s.artSign[k]
	}
	s.lu.solveLower(x)
	s.lu.solveUpper(x)
	s.applyEtasFTRAN(x)
}

// btranCost computes y = B⁻ᵀc_B into s.y (original-row indexed).
func (s *simplex) btranCost(c []float64) {
	for k := 0; k < s.m; k++ {
		s.zs[k] = c[s.basis[k]]
	}
	s.applyEtasBTRAN(s.zs)
	s.lu.btran(s.zs, s.y)
}

// btranUnit computes ρ = B⁻ᵀe_r into s.rho (original-row indexed).
func (s *simplex) btranUnit(r int) {
	for k := range s.zs {
		s.zs[k] = 0
	}
	s.zs[r] = 1
	s.applyEtasBTRAN(s.zs)
	s.lu.btran(s.zs, s.rho)
}

// computeXB rebuilds the basic values from the original RHS and the current
// nonbasic point: x_B = B⁻¹(b − Σ_nonbasic a_j·value_j) — one FTRAN.
func (s *simplex) computeXB() {
	copy(s.rhsW, s.rhs0)
	for j := 0; j < s.width; j++ {
		if s.status[j] == statBasic {
			continue
		}
		if v := s.nbVal(j); v != 0 {
			s.colAddInto(j, -v, s.rhsW)
		}
	}
	s.lu.ftran(s.rhsW, s.xB)
	s.applyEtasFTRAN(s.xB)
}

// pivotUpdate makes column enter basic at position r with value enterVal; the
// leaving column takes leaveStat. s.w must hold B⁻¹a_enter (the eta source).
func (s *simplex) pivotUpdate(r, enter int, enterVal float64, leaveStat int8) {
	s.appendEta(r)
	s.status[s.basis[r]] = leaveStat
	s.basis[r] = enter
	s.status[enter] = statBasic
	s.xB[r] = enterVal
}

// price selects the entering column under cost vector c among columns
// < priceLim: Dantzig scores over a rotating partial-pricing window (the
// cursor resumes where the last pick left off; a window that yields no
// candidate extends until one does or the scan wraps, so optimality claims
// are always backed by a full scan). Bland's rule takes over when the
// iteration budget suggests cycling. Returns (-1, 0) at optimality.
func (s *simplex) price(c []float64, priceLim int, bland bool) (int, float64) {
	if priceLim <= 0 {
		return -1, 0
	}
	eligible := func(j int) (float64, bool) {
		st := s.status[j]
		if st != statLower && st != statUpper {
			return 0, false
		}
		d := c[j] - s.colDot(j, s.y)
		if st == statLower && d < -s.eps {
			return 1, true
		}
		if st == statUpper && d > s.eps {
			return -1, true
		}
		return 0, false
	}
	if bland {
		for j := 0; j < priceLim; j++ {
			if dir, ok := eligible(j); ok {
				return j, dir
			}
		}
		return -1, 0
	}
	window := priceLim / 8
	if window < 256 {
		window = 256
	}
	a, y := s.a, s.y
	enter, dir := -1, 1.0
	best := s.eps
	j := s.priceCursor % priceLim
	scanned := 0
	for scanned < priceLim {
		windowEnd := scanned + window
		for ; scanned < windowEnd && scanned < priceLim; scanned++ {
			st := s.status[j]
			if st == statLower || st == statUpper {
				// d_j = c_j − y·a_j, with the column dot inlined — this is
				// the innermost loop of the whole engine.
				d := c[j]
				if j < s.nstruct {
					for t := a.colPtr[j]; t < a.colPtr[j+1]; t++ {
						d -= a.val[t] * y[a.rowIdx[t]]
					}
				} else if j < s.nreal {
					d -= y[s.slackRow[j-s.nstruct]]
				} else {
					k := j - s.nreal
					d -= s.artSign[k] * y[s.artRow[k]]
				}
				var score float64
				var dd float64
				if st == statLower && d < -s.eps {
					score, dd = -d, 1
				} else if st == statUpper && d > s.eps {
					score, dd = d, -1
				}
				if score > best {
					best, enter, dir = score, j, dd
				}
			}
			j++
			if j >= priceLim {
				j = 0
			}
		}
		if enter != -1 {
			break
		}
	}
	s.priceCursor = j
	return enter, dir
}

// primal runs the revised bounded-variable primal simplex to optimality of
// the engine's phase-2 costs; priceLim restricts entering candidates to
// columns < priceLim (phase 2 excludes artificials this way; their bounds are
// also fixed to [0,0]).
func (s *simplex) primal(priceLim int) Status {
	return s.primalCost(s.cost, priceLim)
}

func (s *simplex) primalCost(c []float64, priceLim int) Status {
	blandAfter := s.maxIter / 2
	for ; s.iters < s.maxIter; s.iters++ {
		if s.etaCount() >= refactorEvery {
			if !s.refactor() {
				return IterLimit // numerically singular basis: give up safely
			}
			s.computeXB()
		}
		s.btranCost(c)
		enter, dir := s.price(c, priceLim, s.iters >= blandAfter)
		if enter == -1 {
			return Optimal
		}
		s.ftranColumn(enter)

		// Ratio test: the entering variable moves by t >= 0 in direction dir,
		// limited by its own opposite bound and by basic variables hitting
		// theirs.
		tBound := s.hi[enter] - s.lo[enter] // +inf when unbounded above
		rowT := inf()
		leave, leaveAtUpper := -1, false
		for k := 0; k < s.m; k++ {
			alpha := dir * s.w[k]
			var r float64
			var atUpper bool
			if alpha > s.eps {
				l := s.lo[s.basis[k]]
				if math.IsInf(l, -1) {
					continue
				}
				r = (s.xB[k] - l) / alpha
			} else if alpha < -s.eps {
				u := s.hi[s.basis[k]]
				if math.IsInf(u, 1) {
					continue
				}
				r = (u - s.xB[k]) / -alpha
				atUpper = true
			} else {
				continue
			}
			if r < 0 {
				r = 0 // numerical: basic value marginally out of bounds
			}
			if r < rowT-s.eps || (r <= rowT+s.eps && (leave == -1 || s.basis[k] < s.basis[leave])) {
				if r < rowT {
					rowT = r
				}
				leave = k
				leaveAtUpper = atUpper
			}
		}
		if math.IsInf(tBound, 1) && leave == -1 {
			return Unbounded
		}
		if tBound < rowT {
			// Bound flip: the entering variable traverses to its other bound
			// without any basis change.
			for k := 0; k < s.m; k++ {
				s.xB[k] -= dir * tBound * s.w[k]
			}
			if s.status[enter] == statLower {
				s.status[enter] = statUpper
			} else {
				s.status[enter] = statLower
			}
			continue
		}
		t := rowT
		enterVal := s.nbVal(enter) + dir*t
		for k := 0; k < s.m; k++ {
			if k != leave {
				s.xB[k] -= dir * t * s.w[k]
			}
		}
		leaveStat := statLower
		if leaveAtUpper {
			leaveStat = statUpper
		}
		s.pivotUpdate(leave, enter, enterVal, leaveStat)
	}
	return IterLimit
}

// dual runs the revised dual simplex until primal feasibility is restored
// (returns Optimal), the problem is proven primal-infeasible, or the
// iteration budget runs out. It requires the current point to be dual
// feasible, which holds after any bound change to an optimal basis because
// bounds enter neither the reduced costs nor the factorization.
func (s *simplex) dual(priceLim int) Status {
	for ; s.iters < s.maxIter; s.iters++ {
		if s.etaCount() >= refactorEvery {
			if !s.refactor() {
				return IterLimit
			}
			s.computeXB()
		}
		// Leaving position: largest bound violation among basic variables.
		row := -1
		below := false
		worst := feasTol
		for k := 0; k < s.m; k++ {
			bk := s.basis[k]
			if v := s.lo[bk] - s.xB[k]; v > worst {
				worst = v
				row = k
				below = true
			}
			if v := s.xB[k] - s.hi[bk]; v > worst {
				worst = v
				row = k
				below = false
			}
		}
		if row == -1 {
			return Optimal // primal feasible (and still dual feasible)
		}
		s.btranUnit(row)  // ρ: the leaving row of B⁻¹A, one dot per column
		s.btranCost(s.cost) // y: reduced costs for the dual ratio test
		// Entering column: dual ratio test. Eligibility keeps the step
		// direction consistent with the leaving variable returning to its
		// violated bound; the min |d/alpha| choice keeps dual feasibility.
		enter := -1
		bestRatio := inf()
		for j := 0; j < priceLim; j++ {
			st := s.status[j]
			if st != statLower && st != statUpper {
				continue
			}
			alpha := s.colDot(j, s.rho)
			var ok bool
			if below {
				ok = (st == statLower && alpha < -s.eps) || (st == statUpper && alpha > s.eps)
			} else {
				ok = (st == statLower && alpha > s.eps) || (st == statUpper && alpha < -s.eps)
			}
			if !ok {
				continue
			}
			d := s.cost[j] - s.colDot(j, s.y)
			r := math.Abs(d / alpha)
			if r < bestRatio-s.eps || (r <= bestRatio+s.eps && (enter == -1 || j < enter)) {
				if r < bestRatio {
					bestRatio = r
				}
				enter = j
			}
		}
		if enter == -1 {
			return Infeasible
		}
		var target float64
		var leaveStat int8
		if below {
			target = s.lo[s.basis[row]]
			leaveStat = statLower
		} else {
			target = s.hi[s.basis[row]]
			leaveStat = statUpper
		}
		s.ftranColumn(enter)
		t := (s.xB[row] - target) / s.w[row]
		for k := 0; k < s.m; k++ {
			if k != row {
				s.xB[k] -= t * s.w[k]
			}
		}
		enterVal := s.nbVal(enter) + t
		s.pivotUpdate(row, enter, enterVal, leaveStat)
	}
	return IterLimit
}

// driveOutArtificials pivots zero-valued basic artificials out of the basis
// wherever a usable non-artificial column exists; rows with no such column
// are redundant and keep their artificial basic at zero (its bounds are then
// fixed so it can never move again).
func (s *simplex) driveOutArtificials() {
	for k := 0; k < s.m; k++ {
		if s.basis[k] < s.nreal {
			continue
		}
		s.btranUnit(k)
		for j := 0; j < s.nreal; j++ {
			if s.status[j] != statLower && s.status[j] != statUpper {
				continue
			}
			if math.Abs(s.colDot(j, s.rho)) <= s.eps {
				continue
			}
			// Degenerate pivot: the artificial leaves at 0, the entering
			// column stays at its current bound value.
			s.ftranColumn(j)
			if math.Abs(s.w[k]) <= s.eps {
				continue
			}
			s.pivotUpdate(k, j, s.nbVal(j), statLower)
			break
		}
	}
	// Freeze every artificial column at zero for phase 2 and beyond.
	for j := s.nreal; j < s.width; j++ {
		s.lo[j], s.hi[j] = 0, 0
		s.cost[j] = 0
		if s.status[j] != statBasic {
			s.status[j] = statFixed
		}
	}
}

// solveCold runs the two-phase revised simplex from the crash basis.
func (s *simplex) solveCold() Status {
	if !s.refactor() {
		// The construction basis is triangular by design; a singular factor
		// here means pathological numerics. Fail safely.
		return IterLimit
	}
	if s.width > s.nreal {
		infeasSum := 0.0
		for k := 0; k < s.m; k++ {
			if s.basis[k] >= s.nreal {
				infeasSum += s.xB[k]
			}
		}
		if infeasSum > 0 {
			p1 := s.p1cost[:s.width]
			for j := range p1 {
				p1[j] = 0
			}
			for j := s.nreal; j < s.width; j++ {
				p1[j] = 1
			}
			st := s.primalCost(p1, s.width)
			if st == IterLimit {
				return IterLimit
			}
			if st == Unbounded {
				// Phase-1 objective is bounded below by 0; this means
				// numerical trouble. Report infeasible to stay safe.
				return Infeasible
			}
			sum := 0.0
			for k := 0; k < s.m; k++ {
				if s.basis[k] >= s.nreal {
					sum += s.xB[k]
				}
			}
			if sum > 1e-7 {
				return Infeasible
			}
		}
		s.driveOutArtificials()
	}
	return s.primal(s.nreal)
}

// extract maps the current point back to the Problem's variable space.
func (s *simplex) extract(p *Problem) *Solution {
	x := make([]float64, s.nstruct)
	for j := 0; j < s.nstruct; j++ {
		if s.status[j] != statBasic {
			x[j] = s.nbVal(j)
		}
	}
	for k, bk := range s.basis {
		if bk < s.nstruct {
			x[bk] = s.xB[k]
		}
	}
	obj := 0.0
	for j := 0; j < s.nstruct; j++ {
		obj += s.cost[j] * x[j]
	}
	sol := &Solution{Objective: obj, X: x, Iters: s.iters}
	if !s.lu.ok || s.lu.m != s.m {
		// A mid-solve refactorization failed (numerically singular basis, the
		// IterLimit bail-out): the factorization is unusable, so no reduced
		// costs — callers only consume them on Optimal anyway.
		return sol
	}
	rc := make([]float64, s.nstruct)
	s.btranCost(s.cost)
	for j := 0; j < s.nstruct; j++ {
		if s.status[j] == statBasic {
			continue // exactly zero by the reduced-cost identity
		}
		rc[j] = s.cost[j] - s.colDot(j, s.y)
	}
	sol.ReducedCosts = rc
	return sol
}

// clone deep-copies the basis headers. The factorization, eta file, and
// scratch are deliberately dropped: every revival path refactorizes from the
// headers, so a clone is a cheap O(m + width) copy — where the dense engine
// had to duplicate its whole m x width tableau per branch-and-bound child.
func (s *simplex) clone() *simplex {
	c := &simplex{
		m: s.m, nstruct: s.nstruct, nreal: s.nreal, width: s.width,
		a: s.a,
		// slackRow must be owned: a recycled engine rebuilds it in place
		// (newSimplex), which would race with a sibling clone still reading
		// the shared array in parallel branch-and-bound.
		slackRow: append([]int32(nil), s.slackRow...),
		artRow:   append([]int32(nil), s.artRow...),
		artSign:  append([]float64(nil), s.artSign...),
		lo:       append([]float64(nil), s.lo...),
		hi:       append([]float64(nil), s.hi...),
		cost:     append([]float64(nil), s.cost...),
		status:   append([]int8(nil), s.status...),
		basis:    append([]int(nil), s.basis...),
		xB:       append([]float64(nil), s.xB...),
		rhs0:     append([]float64(nil), s.rhs0...),
		eps:      s.eps,
		maxIter:  s.maxIter,
		iters:    s.iters,
	}
	return c
}

// warmApply revives a previously optimal engine after the problem's variable
// bounds changed (branch-and-bound's only mutation): verify the objective and
// RHS did not drift, reinstall bounds and normalize nonbasic statuses,
// refactorize from the basis headers, re-solve the basic values, and confirm
// the recomputed reduced costs are still dual feasible. Any doubt — drift, a
// nonbasic column at an infinite bound, a singular basis, lost dual
// feasibility — returns false and the caller solves cold.
func (s *simplex) warmApply(p *Problem) bool {
	objSign := 1.0
	if p.sense == Maximize {
		objSign = -1
	}
	for j := 0; j < s.nstruct; j++ {
		if s.cost[j] != objSign*p.obj[j] {
			return false
		}
	}
	for i := range p.rows {
		if s.rhs0[i] != p.rows[i].RHS {
			return false
		}
	}
	// Identity revival: bounds unchanged too, and the stored factorization is
	// still live (not a clone) — the stored optimal state answers verbatim.
	// The primal-feasibility gate matters: a warm solve that ended Infeasible
	// leaves its (primal-infeasible) end state in the Basis, and reviving
	// that verbatim would report it Optimal.
	if s.lu.ok && s.lu.m == s.m && s.primalFeasible() {
		unchanged := true
		for j := 0; j < s.nstruct; j++ {
			if s.lo[j] != p.lower[j] || s.hi[j] != p.upper[j] {
				unchanged = false
				break
			}
		}
		if unchanged {
			s.clean = true
			s.iters = 0
			return true
		}
	}
	s.clean = false
	if !s.installBounds(p, s.width) {
		return false
	}
	s.ensureScratch()
	// The factorization (plus eta file) is still consistent with the basis
	// headers unless this engine is a clone (clone drops it): revival then
	// needs no refactorization at all, just re-solving the basic values.
	if !s.lu.ok || s.lu.m != s.m {
		if !s.refactor() {
			return false
		}
	}
	s.computeXB()
	// Dual feasibility of the recomputed reduced costs under the (possibly
	// re-opened) statuses — the SolveWarm contract: only bound changes are
	// absorbed; anything that broke dual feasibility forces a cold solve.
	s.btranCost(s.cost)
	for j := 0; j < s.width; j++ {
		st := s.status[j]
		if st != statLower && st != statUpper {
			continue
		}
		d := s.cost[j] - s.colDot(j, s.y)
		if st == statLower && d < -dualTol {
			return false
		}
		if st == statUpper && d > dualTol {
			return false
		}
	}
	s.iters = 0
	return true
}

// installBounds installs p's variable bounds and makes every nonbasic
// column's status (up to limit) consistent with its box: columns whose box
// closed become fixed, previously fixed columns whose box re-opened (a
// sibling branch path, or a pair un-forbidden between rounds) restart at
// their lower bound. Returns false — cold solve — when a nonbasic column
// would sit at an infinite bound.
func (s *simplex) installBounds(p *Problem, limit int) bool {
	copy(s.lo[:s.nstruct], p.lower)
	copy(s.hi[:s.nstruct], p.upper)
	for j := 0; j < limit; j++ {
		st := s.status[j]
		if st == statBasic {
			continue
		}
		if s.lo[j] == s.hi[j] {
			s.status[j] = statFixed
			continue
		}
		if st == statFixed {
			st = statLower
			s.status[j] = st
		}
		if st == statLower && math.IsInf(s.lo[j], -1) {
			return false
		}
		if st == statUpper && math.IsInf(s.hi[j], 1) {
			return false
		}
	}
	return true
}

// solveWarm re-optimizes after warmApply: dual simplex back to primal
// feasibility, then a primal cleanup pass (a no-op when the dual run ends at
// an optimal point, which is the common case).
func (s *simplex) solveWarm() Status {
	if s.clean {
		s.clean = false
		return Optimal
	}
	st := s.dual(s.nreal)
	if st != Optimal {
		return st
	}
	return s.primal(s.nreal)
}

// repriceBase revives a previously optimal engine for a problem whose
// constraint RHS and variable bounds changed since the basis was stored — the
// first stage of the cross-round re-pricing warm start. The revised engine
// needs no transformed-RHS bookkeeping: the new RHS is installed directly and
// the basic values re-solved through the refactorized basis (x_B = B⁻¹(b −
// N·x_N)), which also makes EQ-row RHS changes revivable — the dense tableau
// had to fall back cold on those. It returns false — leaving the caller to
// solve cold — on a structural mismatch, a nonbasic column parked at an
// infinite bound, or a singular stored basis.
func (s *simplex) repriceBase(p *Problem) bool {
	nSlack := 0
	for _, r := range p.rows {
		if r.Op != EQ {
			nSlack++
		}
	}
	if s.nreal != s.nstruct+nSlack {
		return false
	}
	for i := range p.rows {
		s.rhs0[i] = p.rows[i].RHS
	}
	if !s.installBounds(p, s.nreal) {
		return false
	}
	s.ensureScratch()
	if !s.lu.ok || s.lu.m != s.m {
		if !s.refactor() {
			return false
		}
	}
	s.computeXB()
	s.clean = false
	s.iters = 0
	return true
}

// primalFeasible reports whether every basic value sits within its column's
// bounds (to feasTol).
func (s *simplex) primalFeasible() bool {
	for k := 0; k < s.m; k++ {
		bk := s.basis[k]
		if s.xB[k] < s.lo[bk]-feasTol || s.xB[k] > s.hi[bk]+feasTol {
			return false
		}
	}
	return true
}

// repriceCost installs p's (possibly changed) objective into the engine — the
// second stage of the re-pricing warm start, run once the revived point is
// primal feasible. Reduced costs need no eager recompute: the revised primal
// re-prices from the cost vector every iteration.
func (s *simplex) repriceCost(p *Problem) {
	objSign := 1.0
	if p.sense == Maximize {
		objSign = -1
	}
	for j := 0; j < s.nstruct; j++ {
		s.cost[j] = objSign * p.obj[j]
	}
}
