package feed

import (
	"fmt"
	"sort"
	"time"

	"waterwise/internal/energy"
	"waterwise/internal/units"
)

// Replay serves samples from a recorded trace. With the default hold
// interpolation a replayed recording of a Synthetic provider answers At
// bit-identically to the original over the recorded span, which is what
// makes record→replay runs decision-for-decision equal to synthetic runs
// (the round-trip tests and the fleet replay-smoke CI job pin this down).
// The trace is validated at construction and immutable afterwards, so
// Replay is deterministic and safe for concurrent use.
type Replay struct {
	interp string
	keys   []string
	series map[string][]Sample // time-ascending, from the validated trace
}

// NewReplay validates the trace and builds the provider over it.
func NewReplay(tr Trace) (*Replay, error) {
	if err := tr.Validate(); err != nil {
		return nil, err
	}
	interp := tr.Interp
	if interp == "" {
		interp = InterpHold
	}
	r := &Replay{
		interp: interp,
		keys:   make([]string, 0, len(tr.Regions)),
		series: make(map[string][]Sample, len(tr.Regions)),
	}
	for _, rt := range tr.Regions {
		samples := make([]Sample, len(rt.Samples))
		for i, ts := range rt.Samples {
			samples[i] = toSample(ts)
		}
		r.keys = append(r.keys, rt.Key)
		r.series[rt.Key] = samples
	}
	return r, nil
}

// Name implements Provider.
func (*Replay) Name() string { return "replay" }

// Regions implements Provider.
func (r *Replay) Regions() []string { return append([]string(nil), r.keys...) }

// Interp reports the interpolation mode the trace selected (InterpHold or
// InterpLinear).
func (r *Replay) Interp() string { return r.interp }

// At implements Provider. Instants before the first sample clamp to it
// and instants after the last clamp to the last; between samples the
// trace's interpolation mode applies — hold serves the newest sample at
// or before t, linear blends the neighbors. The returned Sample.Time
// echoes t, matching Synthetic.
func (r *Replay) At(key string, t time.Time) (Sample, error) {
	samples, ok := r.series[key]
	if !ok {
		return Sample{}, fmt.Errorf("feed: replay trace has no region %q", key)
	}
	// i is the index of the first sample strictly after t, so the sample
	// "in effect" at t is i-1.
	i := sort.Search(len(samples), func(i int) bool { return samples[i].Time.After(t) })
	var s Sample
	switch {
	case i == 0:
		s = samples[0] // before the recorded span: clamp
	case i == len(samples):
		s = samples[len(samples)-1] // past the recorded span: clamp
	case r.interp == InterpLinear:
		s = lerpSamples(samples[i-1], samples[i], t)
	default:
		s = samples[i-1] // hold
	}
	s.Time = t
	return s, nil
}

// lerpSamples blends two readings linearly at t in (a.Time, b.Time). Mix
// shares blend componentwise — a convex combination of normalized mixes
// is normalized — and the wet-bulb scalar blends; the PUE/WSF overrides
// hold from a (an override is a step-change operational fact, not a
// continuous signal).
func lerpSamples(a, b Sample, t time.Time) Sample {
	f := float64(t.Sub(a.Time)) / float64(b.Time.Sub(a.Time))
	out := Sample{PUE: a.PUE, WSF: a.WSF}
	for _, src := range energy.AllSources() {
		out.Mix[src] = (1-f)*a.Mix[src] + f*b.Mix[src]
	}
	out.WetBulb = units.Celsius((1-f)*float64(a.WetBulb) + f*float64(b.WetBulb))
	return out
}

// ForecastHorizon implements Provider: a replay trace is fully known in
// advance, so nothing it serves is a prediction.
func (*Replay) ForecastHorizon() time.Duration { return 0 }
