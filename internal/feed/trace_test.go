package feed

import (
	"bytes"
	"math"
	"strings"
	"testing"
	"time"
)

func recordedTrace(t *testing.T, hours int) (Trace, *Synthetic) {
	t.Helper()
	p, err := NewSynthetic(testSyntheticRegions(), testStart, hours, 21)
	if err != nil {
		t.Fatal(err)
	}
	tr, err := Record(p, nil, testStart, hours)
	if err != nil {
		t.Fatal(err)
	}
	return tr, p
}

// assertReplayMatches demands the replay provider answer bit-identically
// to the original at on-grid and off-grid instants, including the clamped
// edges — the property that makes record→replay runs decision-identical.
func assertReplayMatches(t *testing.T, r *Replay, p *Synthetic, hours int) {
	t.Helper()
	offsets := []time.Duration{0, 17 * time.Minute, 59*time.Minute + 59*time.Second}
	for _, key := range p.Regions() {
		for h := -2; h < hours+2; h++ {
			for _, off := range offsets {
				at := testStart.Add(time.Duration(h)*time.Hour + off)
				want, err := p.At(key, at)
				if err != nil {
					t.Fatal(err)
				}
				got, err := r.At(key, at)
				if err != nil {
					t.Fatal(err)
				}
				if got.Mix != want.Mix || got.WetBulb != want.WetBulb ||
					got.PUE != want.PUE || got.WSF != want.WSF {
					t.Fatalf("%s at %v: replay sample differs from synthetic\n got %+v\nwant %+v",
						key, at, got, want)
				}
			}
		}
	}
}

// TestRecordReplayRoundTripJSON is the round-trip property at the sample
// level: record a synthetic feed, push it through the JSON wire format,
// and the replay must answer every query bit-identically.
func TestRecordReplayRoundTripJSON(t *testing.T) {
	const hours = 72
	tr, p := recordedTrace(t, hours)
	var buf bytes.Buffer
	if err := WriteTrace(&buf, tr, FormatJSON); err != nil {
		t.Fatal(err)
	}
	back, err := ReadTrace(&buf, FormatJSON)
	if err != nil {
		t.Fatal(err)
	}
	r, err := NewReplay(back)
	if err != nil {
		t.Fatal(err)
	}
	assertReplayMatches(t, r, p, hours)
}

// TestRecordReplayRoundTripCSV repeats the property through the CSV wire
// format (shortest-float rendering must parse back bit-exact).
func TestRecordReplayRoundTripCSV(t *testing.T) {
	const hours = 48
	tr, p := recordedTrace(t, hours)
	var buf bytes.Buffer
	if err := WriteTrace(&buf, tr, FormatCSV); err != nil {
		t.Fatal(err)
	}
	back, err := ReadTrace(&buf, FormatCSV)
	if err != nil {
		t.Fatal(err)
	}
	if len(back.Regions) != len(tr.Regions) {
		t.Fatalf("CSV round trip kept %d regions, want %d", len(back.Regions), len(tr.Regions))
	}
	for i := range tr.Regions {
		if back.Regions[i].Key != tr.Regions[i].Key {
			t.Fatalf("CSV round trip reordered regions: %q at %d, want %q",
				back.Regions[i].Key, i, tr.Regions[i].Key)
		}
	}
	r, err := NewReplay(back)
	if err != nil {
		t.Fatal(err)
	}
	assertReplayMatches(t, r, p, hours)
}

func TestTraceSpan(t *testing.T) {
	tr, _ := recordedTrace(t, 26)
	start, hours := tr.Span()
	if !start.Equal(testStart) || hours != 26 {
		t.Errorf("Span() = %v, %d; want %v, 26", start, hours, testStart)
	}
}

func TestTraceValidation(t *testing.T) {
	good, _ := recordedTrace(t, 4)
	mut := func(f func(*Trace)) Trace {
		var buf bytes.Buffer
		if err := WriteTrace(&buf, good, FormatJSON); err != nil {
			t.Fatal(err)
		}
		cp, err := ReadTrace(&buf, FormatJSON)
		if err != nil {
			t.Fatal(err)
		}
		f(&cp)
		return cp
	}
	cases := []struct {
		name string
		tr   Trace
	}{
		{"bad version", mut(func(tr *Trace) { tr.Version = 99 })},
		{"bad interp", mut(func(tr *Trace) { tr.Interp = "cubic" })},
		{"no regions", mut(func(tr *Trace) { tr.Regions = nil })},
		{"empty key", mut(func(tr *Trace) { tr.Regions[0].Key = "" })},
		{"dup key", mut(func(tr *Trace) { tr.Regions[1].Key = tr.Regions[0].Key })},
		{"no samples", mut(func(tr *Trace) { tr.Regions[0].Samples = nil })},
		{"unsorted", mut(func(tr *Trace) {
			s := tr.Regions[0].Samples
			s[0].Time, s[1].Time = s[1].Time, s[0].Time
		})},
		{"unknown source", mut(func(tr *Trace) { tr.Regions[0].Samples[0].Mix["plutonium"] = 0.1 })},
		{"negative share", mut(func(tr *Trace) {
			m := tr.Regions[0].Samples[0].Mix
			for k := range m {
				m[k] = -m[k]
			}
		})},
		{"bad sum", mut(func(tr *Trace) { tr.Regions[0].Samples[0].Mix["coal"] = 5 })},
		{"nan wet bulb", mut(func(tr *Trace) { tr.Regions[0].Samples[0].WetBulbC = math.NaN() })},
		{"bad pue", mut(func(tr *Trace) {
			pue := -1.0
			tr.Regions[0].Samples[0].PUE = &pue
		})},
		{"bad wsf", mut(func(tr *Trace) {
			wsf := math.Inf(1)
			tr.Regions[0].Samples[0].WSF = &wsf
		})},
	}
	for _, c := range cases {
		if err := c.tr.Validate(); err == nil {
			t.Errorf("%s: accepted", c.name)
		}
		if _, err := NewReplay(c.tr); err == nil {
			t.Errorf("%s: NewReplay accepted", c.name)
		}
	}
	if err := good.Validate(); err != nil {
		t.Errorf("recorded trace rejected: %v", err)
	}
}

func TestReplayLinearInterpolation(t *testing.T) {
	pue := 1.3
	tr := Trace{
		Version: TraceVersion,
		Interp:  InterpLinear,
		Regions: []RegionTrace{{
			Key: "r",
			Samples: []TraceSample{
				{Time: testStart, Mix: map[string]float64{"coal": 1}, WetBulbC: 10, PUE: &pue},
				{Time: testStart.Add(time.Hour), Mix: map[string]float64{"coal": 0.5, "wind": 0.5}, WetBulbC: 20},
			},
		}},
	}
	r, err := NewReplay(tr)
	if err != nil {
		t.Fatal(err)
	}
	if r.Interp() != InterpLinear {
		t.Fatalf("Interp() = %q", r.Interp())
	}
	s, err := r.At("r", testStart.Add(30*time.Minute))
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(float64(s.WetBulb)-15) > 1e-12 {
		t.Errorf("midpoint wet-bulb %g, want 15", float64(s.WetBulb))
	}
	if math.Abs(s.Mix[sourceByName["coal"]]-0.75) > 1e-12 ||
		math.Abs(s.Mix[sourceByName["wind"]]-0.25) > 1e-12 {
		t.Errorf("midpoint mix = %v, want coal 0.75 / wind 0.25", s.Mix)
	}
	if s.PUE != 1.3 {
		t.Errorf("midpoint PUE %g: overrides must hold from the left sample", s.PUE)
	}
	// Outside the span both modes clamp.
	if s, _ := r.At("r", testStart.Add(-time.Hour)); float64(s.WetBulb) != 10 {
		t.Errorf("pre-span sample not clamped to first: %g", float64(s.WetBulb))
	}
	if s, _ := r.At("r", testStart.Add(5*time.Hour)); float64(s.WetBulb) != 20 {
		t.Errorf("post-span sample not clamped to last: %g", float64(s.WetBulb))
	}
}

// forecastingProvider is a stub non-deterministic provider (nonzero
// forecast horizon), standing in for Live in the Record gate test.
type forecastingProvider struct{ Synthetic }

func (*forecastingProvider) Name() string                   { return "stub-live" }
func (*forecastingProvider) ForecastHorizon() time.Duration { return time.Hour }

// TestRecordRejectsForecastingProvider: a provider that serves
// cached/predicted readings (Live) cannot be recorded by instant
// sampling — every sampled hour would repeat the current cache line,
// producing a flat trace that silently misrepresents the world.
func TestRecordRejectsForecastingProvider(t *testing.T) {
	p, err := NewSynthetic(testSyntheticRegions(), testStart, 24, 1)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Record(&forecastingProvider{*p}, nil, testStart, 24); err == nil {
		t.Error("recording a forecasting provider accepted")
	}
}

// TestWriteTraceRefusesLossyCSV: CSV cannot carry the linear
// interpolation mode, so writing a linear trace to CSV must fail
// instead of silently reading back with hold semantics.
func TestWriteTraceRefusesLossyCSV(t *testing.T) {
	tr, _ := recordedTrace(t, 4)
	tr.Interp = InterpLinear
	var buf bytes.Buffer
	if err := WriteTrace(&buf, tr, FormatCSV); err == nil {
		t.Error("linear-interp trace written to CSV without error")
	}
	if err := WriteTrace(&buf, tr, FormatJSON); err != nil {
		t.Errorf("linear-interp trace rejected by JSON: %v", err)
	}
}

func TestFormatForPath(t *testing.T) {
	if f, err := FormatForPath("/tmp/x.JSON"); err != nil || f != FormatJSON {
		t.Errorf("JSON extension: %v, %v", f, err)
	}
	if f, err := FormatForPath("feed.csv"); err != nil || f != FormatCSV {
		t.Errorf("CSV extension: %v, %v", f, err)
	}
	if _, err := FormatForPath("feed.parquet"); err == nil {
		t.Error("unknown extension accepted")
	}
}

func TestReadTraceRejectsGarbage(t *testing.T) {
	if _, err := ReadTrace(strings.NewReader("{not json"), FormatJSON); err == nil {
		t.Error("garbage JSON accepted")
	}
	if _, err := ReadTrace(strings.NewReader("a,b\n1,2\n"), FormatCSV); err == nil {
		t.Error("bad CSV header accepted")
	}
}
