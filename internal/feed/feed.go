// Package feed abstracts where the environment's sustainability signals —
// per-region grid energy mixes and wet-bulb temperatures — come from. The
// scheduler stack reads region conditions through region.Environment, and an
// Environment reads them through a feed.Provider, so the same solver and
// serving layers run unchanged against three signal sources:
//
//   - Synthetic: the paper's deterministic generators (internal/gridmix,
//     internal/weather) behind the interface — bit-for-bit the series the
//     seeded simulator has always produced;
//   - Replay: a recorded trace file (JSON or CSV, see Trace) with schema
//     validation and configurable interpolation — captured from a synthetic
//     run by Record (waterwised -record) or converted from real data;
//   - Live: an electricityMaps-style HTTP client with TTL caching, rate
//     limiting, exponential backoff, and stale-value/forecast fallback that
//     never blocks a scheduling round.
//
// Providers identify regions by plain string keys (the string form of
// region.ID); this package sits below internal/region in the layering so the
// Environment can be built on top of it.
package feed

import (
	"fmt"
	"time"

	"waterwise/internal/energy"
	"waterwise/internal/gridmix"
	"waterwise/internal/units"
	"waterwise/internal/weather"
)

// UnsetWSF is the Sample.WSF sentinel meaning "no override: use the
// region's static water scarcity factor". (0 is a legitimate scarcity
// reading, so absence needs an out-of-band value; WSF is never negative.)
const UnsetWSF = -1

// Sample is one region's raw environment reading at one instant: the
// signals a provider serves, before the factor table turns them into a
// region.Snapshot.
type Sample struct {
	// Time is the instant the reading describes. Synthetic and Replay
	// echo the queried instant; Live reports the upstream datetime of the
	// cached observation.
	Time time.Time
	// Mix is the normalized grid energy mix (shares sum to 1).
	Mix energy.Mix
	// WetBulb is the site wet-bulb temperature; the Environment converts
	// it to WUE via weather.WUEFromWetBulb.
	WetBulb units.Celsius
	// PUE optionally overrides the region's static power usage
	// effectiveness; 0 (or negative) means "use the static value".
	PUE float64
	// WSF optionally overrides the region's static water scarcity factor;
	// UnsetWSF (any negative value) means "use the static value".
	WSF float64
}

// Provider serves per-region, per-timestep environment samples. All three
// implementations in this package are safe for concurrent use, and At
// never blocks on I/O: Synthetic and Replay are pure in-memory lookups,
// and Live answers from its cache (refreshing in the background) — a
// provider failure can make readings stale, never make a scheduling round
// wait.
type Provider interface {
	// Name identifies the provider kind ("synthetic", "replay", "live").
	Name() string
	// Regions lists the region keys the provider answers for, in
	// registration order.
	Regions() []string
	// At returns the sample for the region key at instant t. Instants
	// outside the provider's covered span clamp to the nearest covered
	// sample (the hold semantics every series in this codebase uses).
	// An unknown key is an error; for Synthetic and Replay it is the
	// only error.
	At(key string, t time.Time) (Sample, error)
	// ForecastHorizon reports how far past the provider's newest
	// observation At answers with *predicted* rather than observed data:
	// zero for the deterministic Synthetic and Replay providers (their
	// whole span is "observed"), and the configured horizon for Live,
	// whose fallback serves forecasts while the upstream is unreachable.
	ForecastHorizon() time.Duration
}

// Health is a provider's self-reported freshness and fetch accounting —
// what the serving layer surfaces in /v1/status and /metrics so feed
// degradation is visible before it shows up in decisions.
type Health struct {
	// Provider is the provider kind (Provider.Name).
	Provider string `json:"provider"`
	// Regions is the number of region keys served.
	Regions int `json:"regions"`
	// StalenessSeconds is the age of the oldest region's last good
	// reading (0 for the deterministic providers, whose data never ages).
	StalenessSeconds float64 `json:"staleness_seconds"`
	// Stale reports that at least one region's reading is older than the
	// provider's freshness target (Live's TTL).
	Stale bool `json:"stale"`
	// Fetches and FetchErrors count upstream requests and their failures.
	Fetches     uint64 `json:"fetches,omitempty"`
	FetchErrors uint64 `json:"fetch_errors,omitempty"`
	// CacheHits and CacheMisses count At calls answered fresh vs. past
	// the freshness target.
	CacheHits   uint64 `json:"cache_hits,omitempty"`
	CacheMisses uint64 `json:"cache_misses,omitempty"`
	// ForecastServed counts At calls degraded all the way to the
	// forecast fallback.
	ForecastServed uint64 `json:"forecast_served,omitempty"`
	// LastError is the most recent fetch failure, if any.
	LastError string `json:"last_error,omitempty"`
}

// HealthReporter is implemented by providers that track freshness and
// fetch accounting (Live). Deterministic providers have nothing to
// report; HealthOf synthesizes a trivially healthy record for them.
type HealthReporter interface {
	// Health returns a point-in-time health snapshot.
	Health() Health
}

// HealthOf returns p's health: its own report when p tracks one, or a
// trivially fresh record naming the provider otherwise.
func HealthOf(p Provider) Health {
	if hr, ok := p.(HealthReporter); ok {
		return hr.Health()
	}
	return Health{Provider: p.Name(), Regions: len(p.Regions())}
}

// Series samples the provider hourly over [start, start+hours) for one
// region and extracts a scalar per sample — the bridge between a Provider
// and the []float64 series internal/forecast's Evaluate consumes, so
// forecast error measurement runs against synthetic, replayed, and live
// signals alike.
func Series(p Provider, key string, start time.Time, hours int, f func(Sample) float64) ([]float64, error) {
	if hours <= 0 {
		return nil, fmt.Errorf("feed: series needs a positive horizon, got %d hours", hours)
	}
	out := make([]float64, hours)
	for h := 0; h < hours; h++ {
		s, err := p.At(key, start.Add(time.Duration(h)*time.Hour))
		if err != nil {
			return nil, err
		}
		out[h] = f(s)
	}
	return out, nil
}

// Per-region seed strides of the synthetic generators. These are load-
// bearing constants: every replay-equivalence guarantee in the repo
// assumes region i of a seed-s environment draws its grid series from
// seed s+i*gridSeedStride and its weather series from s+i*wxSeedStride+1,
// exactly as region.NewEnvironment always has.
const (
	gridSeedStride = 7919
	wxSeedStride   = 104729
)

// SyntheticRegion describes one region's generator parameters for
// NewSynthetic.
type SyntheticRegion struct {
	// Key is the region key (the string form of region.ID).
	Key string
	// Grid parameterizes the gridmix generator.
	Grid gridmix.Params
	// Climate parameterizes the wet-bulb weather generator.
	Climate weather.Params
}

// Synthetic serves the paper's deterministic synthetic series: the
// gridmix and weather generators, produced once at construction and read
// immutably afterwards. Identical inputs (regions in order, start, hours,
// seed) always produce the identical samples — and they are bit-for-bit
// the samples region.NewEnvironment has always served, so swapping the
// provider in changes no decision anywhere. Safe for concurrent use.
type Synthetic struct {
	start time.Time
	hours int
	keys  []string
	grid  map[string]*gridmix.Series
	wx    map[string]*weather.Series
}

// NewSynthetic generates the per-region series covering [start,
// start+hours) deterministically from seed. Region order matters: region
// i's generator seeds derive from i (see the seed strides above).
func NewSynthetic(regions []SyntheticRegion, start time.Time, hours int, seed int64) (*Synthetic, error) {
	if len(regions) == 0 {
		return nil, fmt.Errorf("feed: synthetic provider needs at least one region")
	}
	if hours <= 0 {
		return nil, fmt.Errorf("feed: synthetic provider needs a positive horizon, got %d hours", hours)
	}
	s := &Synthetic{
		start: start,
		hours: hours,
		keys:  make([]string, 0, len(regions)),
		grid:  make(map[string]*gridmix.Series, len(regions)),
		wx:    make(map[string]*weather.Series, len(regions)),
	}
	for i, r := range regions {
		if r.Key == "" {
			return nil, fmt.Errorf("feed: synthetic region %d has an empty key", i)
		}
		if _, dup := s.grid[r.Key]; dup {
			return nil, fmt.Errorf("feed: duplicate synthetic region %q", r.Key)
		}
		gs, err := gridmix.Generate(r.Grid, start, hours, seed+int64(i)*gridSeedStride)
		if err != nil {
			return nil, fmt.Errorf("region %q: %w", r.Key, err)
		}
		s.keys = append(s.keys, r.Key)
		s.grid[r.Key] = gs
		s.wx[r.Key] = weather.Generate(r.Climate, start, hours, seed+int64(i)*wxSeedStride+1)
	}
	return s, nil
}

// Name implements Provider.
func (*Synthetic) Name() string { return "synthetic" }

// Regions implements Provider.
func (s *Synthetic) Regions() []string { return append([]string(nil), s.keys...) }

// At implements Provider: the generated hourly series, held within each
// hour and clamped at the span edges.
func (s *Synthetic) At(key string, t time.Time) (Sample, error) {
	gs, ok := s.grid[key]
	if !ok {
		return Sample{}, fmt.Errorf("feed: synthetic provider has no region %q", key)
	}
	return Sample{
		Time:    t,
		Mix:     gs.MixAt(t),
		WetBulb: s.wx[key].At(t),
		WSF:     UnsetWSF,
	}, nil
}

// ForecastHorizon implements Provider: the synthetic series is fully
// deterministic, so nothing it serves is a prediction.
func (*Synthetic) ForecastHorizon() time.Duration { return 0 }
