package feed

import (
	"testing"
	"time"

	"waterwise/internal/energy"
	"waterwise/internal/forecast"
	"waterwise/internal/gridmix"
	"waterwise/internal/weather"
)

var testStart = time.Date(2023, 7, 1, 0, 0, 0, 0, time.UTC)

// testSyntheticRegions mirrors two of the paper regions' generator
// parameters (values lifted from region.Defaults; the region package is
// above feed in the layering, so the specs are restated here).
func testSyntheticRegions() []SyntheticRegion {
	return []SyntheticRegion{
		{
			Key: "zurich",
			Grid: gridmix.Params{
				Base: energy.Mix{
					energy.Hydro: 0.22, energy.Nuclear: 0.45, energy.Solar: 0.08,
					energy.Wind: 0.06, energy.Biomass: 0.05, energy.Gas: 0.14,
				},
				Dispatchable:    []energy.Source{energy.Hydro, energy.Gas},
				WindVariability: 0.45, WindPersistence: 0.85, ShareNoise: 0.05,
			},
			Climate: weather.Params{AnnualMean: 7.5, SeasonalAmp: 7.0, DiurnalAmp: 2.5, Noise: 1.2},
		},
		{
			Key: "mumbai",
			Grid: gridmix.Params{
				Base: energy.Mix{
					energy.Coal: 0.60, energy.Gas: 0.15, energy.Oil: 0.05,
					energy.Solar: 0.11, energy.Wind: 0.07, energy.Hydro: 0.02,
				},
				Dispatchable:    []energy.Source{energy.Coal, energy.Gas},
				WindVariability: 0.40, WindPersistence: 0.85, ShareNoise: 0.05,
			},
			Climate: weather.Params{AnnualMean: 25.0, SeasonalAmp: 3.0, DiurnalAmp: 2.0, Noise: 0.8},
		},
	}
}

// TestSyntheticMatchesGenerators pins the decision-invariance
// precondition: the Synthetic provider must serve exactly the series the
// raw generators produce under the documented per-index seed strides —
// the same values region.NewEnvironment has always read.
func TestSyntheticMatchesGenerators(t *testing.T) {
	const hours = 48
	const seed = 21
	regions := testSyntheticRegions()
	p, err := NewSynthetic(regions, testStart, hours, seed)
	if err != nil {
		t.Fatal(err)
	}
	for i, r := range regions {
		gs, err := gridmix.Generate(r.Grid, testStart, hours, seed+int64(i)*7919)
		if err != nil {
			t.Fatal(err)
		}
		wx := weather.Generate(r.Climate, testStart, hours, seed+int64(i)*104729+1)
		for h := 0; h < hours; h++ {
			// Query off the hour grid too: the hold semantics must match.
			at := testStart.Add(time.Duration(h)*time.Hour + 17*time.Minute)
			s, err := p.At(r.Key, at)
			if err != nil {
				t.Fatal(err)
			}
			if s.Mix != gs.MixAt(at) {
				t.Fatalf("%s hour %d: provider mix differs from generator", r.Key, h)
			}
			if s.WetBulb != wx.At(at) {
				t.Fatalf("%s hour %d: provider wet-bulb differs from generator", r.Key, h)
			}
			if !s.Time.Equal(at) {
				t.Fatalf("%s hour %d: sample time %v, want %v", r.Key, h, s.Time, at)
			}
			if s.PUE > 0 || s.WSF >= 0 {
				t.Fatalf("%s hour %d: synthetic sample carries overrides (pue %g, wsf %g)", r.Key, h, s.PUE, s.WSF)
			}
		}
	}
}

func TestSyntheticValidation(t *testing.T) {
	if _, err := NewSynthetic(nil, testStart, 24, 1); err == nil {
		t.Error("empty region list accepted")
	}
	if _, err := NewSynthetic(testSyntheticRegions(), testStart, 0, 1); err == nil {
		t.Error("zero horizon accepted")
	}
	dup := testSyntheticRegions()
	dup[1].Key = dup[0].Key
	if _, err := NewSynthetic(dup, testStart, 24, 1); err == nil {
		t.Error("duplicate key accepted")
	}
	p, err := NewSynthetic(testSyntheticRegions(), testStart, 24, 1)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := p.At("atlantis", testStart); err == nil {
		t.Error("unknown region answered")
	}
	if got := p.Regions(); len(got) != 2 || got[0] != "zurich" || got[1] != "mumbai" {
		t.Errorf("Regions() = %v, want registration order", got)
	}
	if p.ForecastHorizon() != 0 {
		t.Errorf("synthetic forecast horizon = %v, want 0", p.ForecastHorizon())
	}
}

// TestSeriesBridgesForecast wires a provider-extracted series into the
// forecast evaluation harness: provider-driven forecasts share the exact
// MAE/coverage machinery (and error-injection hooks) the synthetic-only
// path always had.
func TestSeriesBridgesForecast(t *testing.T) {
	const hours = 24 * 7
	p, err := NewSynthetic(testSyntheticRegions(), testStart, hours, 3)
	if err != nil {
		t.Fatal(err)
	}
	series, err := Series(p, "zurich", testStart, hours, func(s Sample) float64 {
		return float64(s.Mix.CarbonIntensity(energy.Table))
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(series) != hours {
		t.Fatalf("series length %d, want %d", len(series), hours)
	}
	ev, err := forecast.Evaluate(forecast.NewPersistence(), testStart, series, time.Hour, 24)
	if err != nil {
		t.Fatal(err)
	}
	if ev.Coverage < 1 {
		t.Errorf("persistence coverage %.2f over a provider series, want 1", ev.Coverage)
	}
	if _, err := Series(p, "atlantis", testStart, hours, func(Sample) float64 { return 0 }); err == nil {
		t.Error("series over an unknown region accepted")
	}
	if _, err := Series(p, "zurich", testStart, 0, func(Sample) float64 { return 0 }); err == nil {
		t.Error("zero-hour series accepted")
	}
}

func TestHealthOfDeterministicProviders(t *testing.T) {
	p, err := NewSynthetic(testSyntheticRegions(), testStart, 24, 1)
	if err != nil {
		t.Fatal(err)
	}
	h := HealthOf(p)
	if h.Provider != "synthetic" || h.Regions != 2 || h.Stale || h.StalenessSeconds != 0 {
		t.Errorf("synthetic health = %+v", h)
	}
}
