package feed

import (
	"encoding/json"
	"fmt"
	"math"
	"net/http"
	"net/http/httptest"
	"sync"
	"testing"
	"time"

	"waterwise/internal/energy"
)

// feedServer is a scriptable electricityMaps-style upstream: mode selects
// the failure to inject, requests counts every hit.
type feedServer struct {
	mu       sync.Mutex
	mode     string // "", "hang", "429", "garbage", "negative", "zerototal", "badwetbulb", "error"
	requests int
	wetBulb  float64
}

func (fs *feedServer) setMode(m string) {
	fs.mu.Lock()
	fs.mode = m
	fs.mu.Unlock()
}

func (fs *feedServer) count() int {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	return fs.requests
}

func (fs *feedServer) handler() http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		fs.mu.Lock()
		fs.requests++
		mode := fs.mode
		wet := fs.wetBulb
		fs.mu.Unlock()
		key := r.URL.Path[len("/v1/environment/"):]
		switch mode {
		case "hang":
			time.Sleep(2 * time.Second)
			fallthrough
		case "":
			payload := map[string]interface{}{
				"zone":           key,
				"datetime":       time.Date(2026, 7, 28, 12, 0, 0, 0, time.UTC).Format(time.RFC3339),
				"powerBreakdown": map[string]float64{"gas": 300, "coal": 500, "solar": 200},
				"wetBulbC":       wet,
				"pue":            1.25,
				"wsf":            0.4,
			}
			_ = json.NewEncoder(w).Encode(payload)
		case "429":
			w.Header().Set("Retry-After", "120")
			w.WriteHeader(http.StatusTooManyRequests)
		case "garbage":
			fmt.Fprint(w, "{definitely not json")
		case "negative":
			fmt.Fprintf(w, `{"zone":%q,"powerBreakdown":{"gas":-5,"coal":6},"wetBulbC":10}`, key)
		case "zerototal":
			fmt.Fprintf(w, `{"zone":%q,"powerBreakdown":{},"wetBulbC":10}`, key)
		case "badwetbulb":
			fmt.Fprintf(w, `{"zone":%q,"powerBreakdown":{"gas":1},"wetBulbC":200}`, key)
		case "error":
			http.Error(w, "boom", http.StatusInternalServerError)
		}
	}
}

// fakeClock is a thread-safe manual clock injected as Live.now.
type fakeClock struct {
	mu sync.Mutex
	t  time.Time
}

func (c *fakeClock) now() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.t
}

func (c *fakeClock) advance(d time.Duration) {
	c.mu.Lock()
	c.t = c.t.Add(d)
	c.mu.Unlock()
}

// newTestLive builds a Live over the scripted upstream with a fake clock
// installed (safe: NewLive's prime is synchronous, so no goroutine has
// captured the real clock yet).
func newTestLive(t *testing.T, fs *feedServer, cfg LiveConfig) (*Live, *fakeClock, *httptest.Server) {
	t.Helper()
	ts := httptest.NewServer(fs.handler())
	t.Cleanup(ts.Close)
	cfg.BaseURL = ts.URL
	if len(cfg.Regions) == 0 {
		cfg.Regions = []string{"oregon"}
	}
	l, err := NewLive(cfg)
	if err != nil {
		t.Fatal(err)
	}
	clk := &fakeClock{t: time.Date(2026, 7, 28, 12, 0, 0, 0, time.UTC)}
	l.now = clk.now
	// Re-anchor the prime instants onto the fake clock so TTL arithmetic
	// is fully deterministic.
	l.mu.Lock()
	for _, r := range l.regions {
		r.goodAt = clk.t
		r.notBefore = clk.t
	}
	l.mu.Unlock()
	return l, clk, ts
}

// waitFor polls cond until it holds or the deadline passes.
func waitFor(t *testing.T, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(2 * time.Millisecond)
	}
	t.Fatalf("timed out waiting for %s", what)
}

func TestLiveServesAndCaches(t *testing.T) {
	fs := &feedServer{wetBulb: 18.5}
	l, _, _ := newTestLive(t, fs, LiveConfig{TTL: time.Hour, Token: "sesame"})
	for i := 0; i < 3; i++ {
		s, err := l.At("oregon", time.Now())
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(s.Mix[energy.Gas]-0.3) > 1e-12 || math.Abs(s.Mix[energy.Coal]-0.5) > 1e-12 ||
			math.Abs(s.Mix[energy.Solar]-0.2) > 1e-12 {
			t.Fatalf("normalized mix = %v", s.Mix)
		}
		if float64(s.WetBulb) != 18.5 || s.PUE != 1.25 || s.WSF != 0.4 {
			t.Fatalf("sample = %+v", s)
		}
	}
	h := l.Health()
	if h.Provider != "live" || h.Regions != 1 || h.Stale || h.Fetches != 1 || h.CacheHits != 3 {
		t.Errorf("health = %+v", h)
	}
	if _, err := l.At("atlantis", time.Now()); err == nil {
		t.Error("unknown region answered")
	}
	if l.ForecastHorizon() != DefaultLiveForecastHorizon {
		t.Errorf("forecast horizon = %v", l.ForecastHorizon())
	}
}

// TestLiveTimeoutServesStale is the "never stalls a round" guarantee
// against a hanging upstream: an At call past the TTL must return the
// stale reading immediately while the refresh times out in the
// background and is counted as a fetch error.
func TestLiveTimeoutServesStale(t *testing.T) {
	fs := &feedServer{wetBulb: 18.5}
	l, clk, _ := newTestLive(t, fs, LiveConfig{TTL: time.Minute, Timeout: 50 * time.Millisecond})
	fs.setMode("hang")
	clk.advance(2 * time.Minute)
	t0 := time.Now()
	s, err := l.At("oregon", time.Now())
	if err != nil {
		t.Fatal(err)
	}
	if elapsed := time.Since(t0); elapsed > 500*time.Millisecond {
		t.Fatalf("At blocked %v on a hanging upstream", elapsed)
	}
	if float64(s.WetBulb) != 18.5 {
		t.Fatalf("stale sample = %+v", s)
	}
	waitFor(t, "timeout fetch error", func() bool { return l.Health().FetchErrors >= 1 })
	h := l.Health()
	if !h.Stale || h.StalenessSeconds < 100 || h.LastError == "" {
		t.Errorf("health after timeout = %+v", h)
	}
}

// TestLive429Backoff: a 429 with Retry-After must push the next fetch out
// at least that far — repeated At calls inside the window trigger no
// further upstream hits.
func TestLive429Backoff(t *testing.T) {
	fs := &feedServer{wetBulb: 18.5}
	l, clk, _ := newTestLive(t, fs, LiveConfig{TTL: time.Minute})
	fs.setMode("429")
	clk.advance(2 * time.Minute)
	if _, err := l.At("oregon", time.Now()); err != nil {
		t.Fatal(err)
	}
	waitFor(t, "429 fetch error", func() bool { return l.Health().FetchErrors >= 1 })
	hits := fs.count()
	// Inside the Retry-After window: misses served stale, no new fetches.
	clk.advance(time.Minute)
	for i := 0; i < 5; i++ {
		if _, err := l.At("oregon", time.Now()); err != nil {
			t.Fatal(err)
		}
	}
	time.Sleep(20 * time.Millisecond)
	if got := fs.count(); got != hits {
		t.Fatalf("fetched %d times inside the Retry-After window (was %d)", got, hits)
	}
	// Past the window the provider retries (and recovers).
	fs.setMode("")
	clk.advance(3 * time.Minute)
	if _, err := l.At("oregon", time.Now()); err != nil {
		t.Fatal(err)
	}
	waitFor(t, "recovery fetch", func() bool { return fs.count() > hits })
	waitFor(t, "freshness restored", func() bool { return !l.Health().Stale })
}

// TestLiveMalformedPayloads: garbage and semantically invalid payloads
// are fetch errors — the cached reading keeps serving, never a partial
// or poisoned sample.
func TestLiveMalformedPayloads(t *testing.T) {
	fs := &feedServer{wetBulb: 18.5}
	l, clk, _ := newTestLive(t, fs, LiveConfig{TTL: time.Minute})
	for i, mode := range []string{"garbage", "negative", "zerototal", "badwetbulb", "error"} {
		fs.setMode(mode)
		clk.advance(30 * time.Minute) // past TTL and any accumulated backoff
		if _, err := l.At("oregon", time.Now()); err != nil {
			t.Fatal(err)
		}
		want := uint64(i + 1)
		waitFor(t, mode+" fetch error", func() bool { return l.Health().FetchErrors >= want })
		s, err := l.At("oregon", time.Now())
		if err != nil {
			t.Fatal(err)
		}
		if float64(s.WetBulb) != 18.5 || math.Abs(s.Mix[energy.Coal]-0.5) > 1e-12 {
			t.Fatalf("mode %s poisoned the cache: %+v", mode, s)
		}
	}
	if h := l.Health(); h.LastError == "" {
		t.Error("no LastError after malformed payloads")
	}
}

// TestLiveForecastFallback: once the reading is staler than
// ForecastAfter, At degrades to the seasonal-naive forecast (persistence
// while cold — i.e. the last good value) and counts it.
func TestLiveForecastFallback(t *testing.T) {
	fs := &feedServer{wetBulb: 18.5}
	l, clk, _ := newTestLive(t, fs, LiveConfig{TTL: time.Minute, ForecastAfter: 5 * time.Minute})
	fs.setMode("error")
	clk.advance(10 * time.Minute)
	s, err := l.At("oregon", clk.now())
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(float64(s.WetBulb)-18.5) > 1e-9 {
		t.Errorf("forecast wet-bulb %g, want the persisted 18.5", float64(s.WetBulb))
	}
	if math.Abs(s.Mix[energy.Coal]-0.5) > 1e-9 || math.Abs(s.Mix[energy.Gas]-0.3) > 1e-9 {
		t.Errorf("forecast mix = %v", s.Mix)
	}
	if s.PUE != 1.25 || s.WSF != 0.4 {
		t.Errorf("forecast dropped the overrides: %+v", s)
	}
	if h := l.Health(); h.ForecastServed < 1 || !h.Stale {
		t.Errorf("health = %+v", h)
	}
}

func TestLiveConstructionFailures(t *testing.T) {
	fs := &feedServer{wetBulb: 18.5}
	fs.setMode("error")
	ts := httptest.NewServer(fs.handler())
	defer ts.Close()
	if _, err := NewLive(LiveConfig{BaseURL: ts.URL, Regions: []string{"oregon"}}); err == nil {
		t.Error("prime against a 500 upstream accepted")
	}
	if _, err := NewLive(LiveConfig{Regions: []string{"oregon"}}); err == nil {
		t.Error("missing base URL accepted")
	}
	if _, err := NewLive(LiveConfig{BaseURL: ts.URL}); err == nil {
		t.Error("no regions accepted")
	}
	if _, err := NewLive(LiveConfig{BaseURL: ts.URL, Regions: []string{"a", "a"}}); err == nil {
		t.Error("duplicate regions accepted")
	}
}

func TestSampleFromPayloadValidation(t *testing.T) {
	wsfNeg := -0.1
	cases := []struct {
		name string
		p    livePayload
	}{
		{"wrong zone", livePayload{Zone: "elsewhere", PowerBreakdown: map[string]float64{"gas": 1}, WetBulbC: 10}},
		{"unknown source", livePayload{PowerBreakdown: map[string]float64{"fusion": 1}, WetBulbC: 10}},
		{"nan share", livePayload{PowerBreakdown: map[string]float64{"gas": math.NaN()}, WetBulbC: 10}},
		{"zero total", livePayload{PowerBreakdown: map[string]float64{}, WetBulbC: 10}},
		{"wet bulb", livePayload{PowerBreakdown: map[string]float64{"gas": 1}, WetBulbC: 100}},
		{"pue below 1", livePayload{PowerBreakdown: map[string]float64{"gas": 1}, WetBulbC: 10, PUE: 0.5}},
		{"negative wsf", livePayload{PowerBreakdown: map[string]float64{"gas": 1}, WetBulbC: 10, WSF: &wsfNeg}},
	}
	for _, c := range cases {
		if _, err := sampleFromPayload("oregon", c.p); err == nil {
			t.Errorf("%s: accepted", c.name)
		}
	}
	s, err := sampleFromPayload("oregon", livePayload{
		Zone: "oregon", PowerBreakdown: map[string]float64{"gas": 2, "wind": 2}, WetBulbC: 10,
	})
	if err != nil {
		t.Fatal(err)
	}
	if s.Mix[energy.Gas] != 0.5 || s.Mix[energy.Wind] != 0.5 || s.WSF != UnsetWSF || s.PUE != 0 {
		t.Errorf("sample = %+v", s)
	}
}
