package feed

import (
	"encoding/json"
	"fmt"
	"io"
	"math"
	"net/http"
	"net/url"
	"strconv"
	"strings"
	"sync"
	"time"

	"waterwise/internal/energy"
	"waterwise/internal/forecast"
	"waterwise/internal/units"
)

// Defaults of LiveConfig (applied by NewLive when the field is zero).
const (
	// DefaultLiveTTL is how long a fetched reading counts as fresh.
	DefaultLiveTTL = 5 * time.Minute
	// DefaultLiveTimeout bounds one upstream request.
	DefaultLiveTimeout = 5 * time.Second
	// DefaultLiveMinInterval is the per-region rate limit: the shortest
	// gap between two upstream fetches, however often At is called.
	DefaultLiveMinInterval = time.Second
	// DefaultLiveMaxBackoff caps the exponential backoff between retries
	// while the upstream keeps failing.
	DefaultLiveMaxBackoff = 5 * time.Minute
	// DefaultLiveForecastHorizon is how far past the last good reading
	// the fallback keeps serving forecasts before Health reports the
	// feed as beyond recovery (At still answers — it never blocks or
	// fails — the horizon is an observability threshold, not a cutoff).
	DefaultLiveForecastHorizon = 24 * time.Hour
	// DefaultLiveSeasonalDays is the trailing window of the
	// seasonal-naive fallback forecaster.
	DefaultLiveSeasonalDays = 2
)

// LiveConfig parameterizes the Live provider. Zero values take the
// defaults above; BaseURL and Regions are required.
type LiveConfig struct {
	// BaseURL is the feed service root; Live fetches
	// GET {BaseURL}/v1/environment/{region}.
	BaseURL string
	// Regions lists the region keys to serve.
	Regions []string
	// Token, when set, is sent as the electricityMaps-style "auth-token"
	// header on every request.
	Token string
	// TTL is the freshness window of a fetched reading; an At call
	// inside it is a cache hit and triggers no request.
	TTL time.Duration
	// Timeout bounds one upstream request (connect + response).
	Timeout time.Duration
	// MinInterval is the per-region rate limit between fetches.
	MinInterval time.Duration
	// MaxBackoff caps the exponential backoff applied after consecutive
	// fetch failures (a 429 Retry-After header overrides the computed
	// backoff when it asks for longer).
	MaxBackoff time.Duration
	// ForecastAfter is the staleness beyond which At degrades from the
	// raw stale value to the seasonal-naive forecast; 0 means 3×TTL.
	ForecastAfter time.Duration
	// ForecastHorizon is the advisory horizon reported by
	// Provider.ForecastHorizon.
	ForecastHorizon time.Duration
	// SeasonalDays is the trailing window (days) of the fallback
	// forecaster.
	SeasonalDays int
	// Client overrides the HTTP client (tests); nil builds one from
	// Timeout.
	Client *http.Client
}

// livePayload is the wire schema of one region reading, shaped after the
// electricityMaps power-breakdown response: a zone, the observation
// datetime, and a generation breakdown by source name — absolute power is
// fine, Live normalizes shares — plus the site signals the scheduler
// needs (wet-bulb; optional pue/wsf overrides).
type livePayload struct {
	Zone           string             `json:"zone"`
	Datetime       time.Time          `json:"datetime"`
	PowerBreakdown map[string]float64 `json:"powerBreakdown"`
	WetBulbC       float64            `json:"wetBulbC"`
	PUE            float64            `json:"pue"`
	WSF            *float64           `json:"wsf"`
}

// liveRegion is one region's cache line and fetch gate.
type liveRegion struct {
	key    string
	sample Sample    // last good reading
	goodAt time.Time // wall instant sample was fetched
	// notBefore gates the next fetch (rate limit + backoff); inflight is
	// the single-flight latch.
	notBefore time.Time
	backoff   time.Duration
	inflight  bool
	// Fallback forecasters, fed one observation per successful fetch:
	// the wet-bulb scalar and each source's share.
	wetPred *forecast.SeasonalNaive
	mixPred map[energy.Source]*forecast.SeasonalNaive
}

// Live polls an electricityMaps-style HTTP feed and serves it through the
// Provider contract without ever blocking a caller: At answers from the
// TTL cache, kicks an asynchronous single-flight refresh when the cache
// has expired (rate-limited, with exponential backoff while the upstream
// fails), and degrades through stale values to a seasonal-naive forecast
// — a feed outage makes readings stale (visible in Health, /v1/status,
// and /metrics), never makes a scheduling round wait. Construction primes
// the cache synchronously and fails fast if the upstream is unreachable.
// Safe for concurrent use.
type Live struct {
	cfg    LiveConfig
	client *http.Client
	now    func() time.Time // injectable for tests

	mu      sync.Mutex
	keys    []string
	regions map[string]*liveRegion

	fetches, fetchErrors   uint64
	cacheHits, cacheMisses uint64
	forecastServed         uint64
	lastErr                string
}

// NewLive validates cfg, primes every region's cache with one synchronous
// fetch (failing fast on an unreachable or misbehaving upstream), and
// returns the provider.
func NewLive(cfg LiveConfig) (*Live, error) {
	if cfg.BaseURL == "" {
		return nil, fmt.Errorf("feed: live provider needs a base URL")
	}
	if _, err := url.Parse(cfg.BaseURL); err != nil {
		return nil, fmt.Errorf("feed: live base URL: %w", err)
	}
	if len(cfg.Regions) == 0 {
		return nil, fmt.Errorf("feed: live provider needs at least one region")
	}
	if cfg.TTL <= 0 {
		cfg.TTL = DefaultLiveTTL
	}
	if cfg.Timeout <= 0 {
		cfg.Timeout = DefaultLiveTimeout
	}
	if cfg.MinInterval <= 0 {
		cfg.MinInterval = DefaultLiveMinInterval
	}
	if cfg.MaxBackoff <= 0 {
		cfg.MaxBackoff = DefaultLiveMaxBackoff
	}
	if cfg.ForecastAfter <= 0 {
		cfg.ForecastAfter = 3 * cfg.TTL
	}
	if cfg.ForecastHorizon <= 0 {
		cfg.ForecastHorizon = DefaultLiveForecastHorizon
	}
	if cfg.SeasonalDays <= 0 {
		cfg.SeasonalDays = DefaultLiveSeasonalDays
	}
	client := cfg.Client
	if client == nil {
		client = &http.Client{Timeout: cfg.Timeout}
	}
	l := &Live{
		cfg:     cfg,
		client:  client,
		now:     time.Now,
		regions: make(map[string]*liveRegion, len(cfg.Regions)),
	}
	for _, key := range cfg.Regions {
		if key == "" {
			return nil, fmt.Errorf("feed: live provider given an empty region key")
		}
		if _, dup := l.regions[key]; dup {
			return nil, fmt.Errorf("feed: duplicate live region %q", key)
		}
		wet, err := forecast.NewSeasonalNaive(cfg.SeasonalDays)
		if err != nil {
			return nil, err
		}
		r := &liveRegion{key: key, wetPred: wet, mixPred: make(map[energy.Source]*forecast.SeasonalNaive)}
		for _, src := range energy.AllSources() {
			p, err := forecast.NewSeasonalNaive(cfg.SeasonalDays)
			if err != nil {
				return nil, err
			}
			r.mixPred[src] = p
		}
		l.keys = append(l.keys, key)
		l.regions[key] = r
	}
	// Prime: one synchronous fetch per region. A dead upstream surfaces
	// here, at construction, instead of as permanently failing rounds.
	for _, key := range l.keys {
		sample, err := l.fetch(key)
		if err != nil {
			return nil, fmt.Errorf("feed: priming live region %q: %w", key, err)
		}
		l.mu.Lock()
		l.fetches++
		l.storeLocked(l.regions[key], sample)
		l.mu.Unlock()
	}
	return l, nil
}

// Name implements Provider.
func (*Live) Name() string { return "live" }

// Regions implements Provider.
func (l *Live) Regions() []string { return append([]string(nil), l.keys...) }

// ForecastHorizon implements Provider.
func (l *Live) ForecastHorizon() time.Duration { return l.cfg.ForecastHorizon }

// At implements Provider. It never performs I/O: a fresh cache line
// answers directly; an expired one answers stale (or, past
// ForecastAfter, from the seasonal-naive forecast) while a background
// refresh runs — gated by the rate limit, the failure backoff, and a
// single-flight latch. The instant t only parameterizes the forecast;
// the cache is keyed on wall time, which is the meaningful reading for a
// service running in real time (TimeScale 1).
func (l *Live) At(key string, t time.Time) (Sample, error) {
	l.mu.Lock()
	r, ok := l.regions[key]
	if !ok {
		l.mu.Unlock()
		return Sample{}, fmt.Errorf("feed: live provider has no region %q", key)
	}
	now := l.now()
	age := now.Sub(r.goodAt)
	if age <= l.cfg.TTL {
		l.cacheHits++
		s := r.sample
		l.mu.Unlock()
		return s, nil
	}
	l.cacheMisses++
	if !r.inflight && !now.Before(r.notBefore) {
		r.inflight = true
		go l.refresh(key)
	}
	var s Sample
	if age > l.cfg.ForecastAfter {
		l.forecastServed++
		s = l.forecastLocked(r, t)
	} else {
		s = r.sample
	}
	l.mu.Unlock()
	return s, nil
}

// refresh fetches one region in the background and updates its cache
// line, backoff state, and the provider counters.
func (l *Live) refresh(key string) {
	sample, err := l.fetch(key)
	l.mu.Lock()
	defer l.mu.Unlock()
	r := l.regions[key]
	r.inflight = false
	l.fetches++
	now := l.now()
	if err != nil {
		l.fetchErrors++
		l.lastErr = err.Error()
		if r.backoff < l.cfg.MinInterval {
			r.backoff = l.cfg.MinInterval
		} else {
			r.backoff *= 2
		}
		if r.backoff > l.cfg.MaxBackoff {
			r.backoff = l.cfg.MaxBackoff
		}
		wait := r.backoff
		if ra, ok := retryAfter(err); ok && ra > wait {
			wait = ra
		}
		r.notBefore = now.Add(wait)
		return
	}
	r.backoff = 0
	r.notBefore = now.Add(l.cfg.MinInterval)
	l.storeLocked(r, sample)
}

// storeLocked installs a good reading and feeds the fallback
// forecasters. Called with l.mu held.
func (l *Live) storeLocked(r *liveRegion, s Sample) {
	r.sample = s
	r.goodAt = l.now()
	at := s.Time
	if at.IsZero() {
		at = r.goodAt
	}
	r.wetPred.Observe(at, float64(s.WetBulb))
	for _, src := range energy.AllSources() {
		r.mixPred[src].Observe(at, s.Mix[src])
	}
}

// forecastLocked builds a predicted sample for instant t from the
// region's forecasters. A cold forecaster falls back to persistence —
// i.e. the stale value — so this path degrades gracefully from day one.
// Called with l.mu held.
func (l *Live) forecastLocked(r *liveRegion, t time.Time) Sample {
	s := Sample{Time: t, PUE: r.sample.PUE, WSF: r.sample.WSF}
	if v, ok := r.wetPred.Predict(t); ok {
		s.WetBulb = units.Celsius(v)
	} else {
		s.WetBulb = r.sample.WetBulb
	}
	total := 0.0
	for _, src := range energy.AllSources() {
		v, ok := r.mixPred[src].Predict(t)
		if !ok {
			v = r.sample.Mix[src]
		}
		if v < 0 {
			v = 0
		}
		s.Mix[src] = v
		total += v
	}
	if total <= 0 {
		s.Mix = r.sample.Mix
		return s
	}
	s.Mix = s.Mix.Normalize()
	return s
}

// httpStatusError carries the status code of a non-2xx reply so the
// backoff can honor 429 Retry-After.
type httpStatusError struct {
	status     int
	retryAfter time.Duration
}

// Error implements error, naming the status and any requested delay.
func (e *httpStatusError) Error() string {
	if e.status == http.StatusTooManyRequests && e.retryAfter > 0 {
		return fmt.Sprintf("upstream status %d (retry after %v)", e.status, e.retryAfter)
	}
	return fmt.Sprintf("upstream status %d", e.status)
}

// retryAfter extracts the upstream's requested delay from a 429 error.
func retryAfter(err error) (time.Duration, bool) {
	se, ok := err.(*httpStatusError)
	if !ok || se.retryAfter <= 0 {
		return 0, false
	}
	return se.retryAfter, true
}

// fetch performs one upstream request and validates the payload into a
// Sample. It is the only method that touches the network and is never
// called with l.mu held.
func (l *Live) fetch(key string) (Sample, error) {
	u := strings.TrimSuffix(l.cfg.BaseURL, "/") + "/v1/environment/" + url.PathEscape(key)
	req, err := http.NewRequest(http.MethodGet, u, nil)
	if err != nil {
		return Sample{}, err
	}
	if l.cfg.Token != "" {
		req.Header.Set("auth-token", l.cfg.Token)
	}
	resp, err := l.client.Do(req)
	if err != nil {
		return Sample{}, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		se := &httpStatusError{status: resp.StatusCode}
		if resp.StatusCode == http.StatusTooManyRequests {
			if secs, err := strconv.Atoi(strings.TrimSpace(resp.Header.Get("Retry-After"))); err == nil && secs > 0 {
				se.retryAfter = time.Duration(secs) * time.Second
			}
		}
		return Sample{}, se
	}
	body, err := io.ReadAll(io.LimitReader(resp.Body, 1<<20))
	if err != nil {
		return Sample{}, fmt.Errorf("reading body: %w", err)
	}
	var p livePayload
	if err := json.Unmarshal(body, &p); err != nil {
		return Sample{}, fmt.Errorf("decoding payload: %w", err)
	}
	return sampleFromPayload(key, p)
}

// sampleFromPayload validates a payload into a Sample: known sources,
// finite non-negative breakdown with positive total (normalized to
// shares), finite plausible wet-bulb, positive/non-negative overrides.
func sampleFromPayload(key string, p livePayload) (Sample, error) {
	if p.Zone != "" && p.Zone != key {
		return Sample{}, fmt.Errorf("payload zone %q, want %q", p.Zone, key)
	}
	var mix energy.Mix
	total := 0.0
	for name, v := range p.PowerBreakdown {
		src, ok := sourceByName[name]
		if !ok {
			return Sample{}, fmt.Errorf("unknown energy source %q", name)
		}
		if math.IsNaN(v) || math.IsInf(v, 0) || v < 0 {
			return Sample{}, fmt.Errorf("source %q value %g is not a finite non-negative number", name, v)
		}
		mix[src] = v
		total += v
	}
	if total <= 0 {
		return Sample{}, fmt.Errorf("power breakdown total %g is not positive", total)
	}
	if math.IsNaN(p.WetBulbC) || p.WetBulbC < -60 || p.WetBulbC > 60 {
		return Sample{}, fmt.Errorf("wet-bulb %g outside the plausible [-60, 60] °C", p.WetBulbC)
	}
	s := Sample{
		Time:    p.Datetime,
		Mix:     mix.Normalize(),
		WetBulb: units.Celsius(p.WetBulbC),
		WSF:     UnsetWSF,
	}
	if p.PUE != 0 {
		if p.PUE < 1 || math.IsInf(p.PUE, 0) || math.IsNaN(p.PUE) {
			return Sample{}, fmt.Errorf("pue %g is not a finite value >= 1", p.PUE)
		}
		s.PUE = p.PUE
	}
	if p.WSF != nil {
		if *p.WSF < 0 || math.IsInf(*p.WSF, 0) || math.IsNaN(*p.WSF) {
			return Sample{}, fmt.Errorf("wsf %g is not a finite non-negative value", *p.WSF)
		}
		s.WSF = *p.WSF
	}
	return s, nil
}

// Health implements HealthReporter: staleness is the age of the oldest
// region's last good reading, and Stale reports any region past the TTL.
func (l *Live) Health() Health {
	l.mu.Lock()
	defer l.mu.Unlock()
	h := Health{
		Provider:       "live",
		Regions:        len(l.keys),
		Fetches:        l.fetches,
		FetchErrors:    l.fetchErrors,
		CacheHits:      l.cacheHits,
		CacheMisses:    l.cacheMisses,
		ForecastServed: l.forecastServed,
		LastError:      l.lastErr,
	}
	now := l.now()
	for _, key := range l.keys {
		age := now.Sub(l.regions[key].goodAt)
		if age.Seconds() > h.StalenessSeconds {
			h.StalenessSeconds = age.Seconds()
		}
		if age > l.cfg.TTL {
			h.Stale = true
		}
	}
	return h
}
