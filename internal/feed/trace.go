package feed

import (
	"encoding/csv"
	"encoding/json"
	"fmt"
	"io"
	"math"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"time"

	"waterwise/internal/energy"
	"waterwise/internal/units"
)

// TraceVersion is the schema version this package reads and writes.
const TraceVersion = 1

// Interpolation modes of a replay trace.
const (
	// InterpHold serves the newest sample at or before the queried
	// instant — the hourly-hold semantics of the synthetic series, and
	// the mode a recorded synthetic run must use to replay
	// decision-for-decision. The default.
	InterpHold = "hold"
	// InterpLinear blends the surrounding samples linearly (mix shares
	// componentwise — a convex combination of normalized mixes stays
	// normalized — and wet-bulb scalar; PUE/WSF overrides still hold).
	// For sub-hourly real-world captures where holding would staircase.
	InterpLinear = "linear"
)

// Trace is the serialized replay feed: a schema version, an interpolation
// mode, and one time-sorted sample series per region. It is the wire form
// of what Record captures and what NewReplay serves; ReadTrace/WriteTrace
// move it through JSON or CSV losslessly (floats round-trip bit-exact in
// both encodings).
type Trace struct {
	// Version is the schema version (TraceVersion).
	Version int `json:"version"`
	// Interp is the interpolation mode: InterpHold (also the meaning of
	// empty) or InterpLinear.
	Interp string `json:"interp,omitempty"`
	// Regions holds one sample series per region key.
	Regions []RegionTrace `json:"regions"`
}

// RegionTrace is one region's recorded sample series.
type RegionTrace struct {
	// Key is the region key (the string form of region.ID).
	Key string `json:"key"`
	// Samples are the readings, in strictly ascending time order.
	Samples []TraceSample `json:"samples"`
}

// TraceSample is one serialized reading. Mix shares are keyed by energy
// source name ("hydro", "coal", ...); absent sources have share 0. A nil
// PUE/WSF means "no override: the region's static value applies".
type TraceSample struct {
	// Time is the instant the reading describes.
	Time time.Time `json:"t"`
	// Mix is the normalized energy mix by source name; shares must be
	// finite, non-negative, and sum to 1 (±1e-6).
	Mix map[string]float64 `json:"mix"`
	// WetBulbC is the wet-bulb temperature in °C.
	WetBulbC float64 `json:"wet_bulb_c"`
	// PUE optionally overrides the region's static PUE (must be > 0).
	PUE *float64 `json:"pue,omitempty"`
	// WSF optionally overrides the region's static water scarcity factor
	// (must be >= 0).
	WSF *float64 `json:"wsf,omitempty"`
}

// sourceByName maps energy source names back to sources for decoding.
var sourceByName = func() map[string]energy.Source {
	m := make(map[string]energy.Source, len(energy.AllSources()))
	for _, s := range energy.AllSources() {
		m[s.String()] = s
	}
	return m
}()

// toTraceSample serializes a Sample (nonzero shares only, overrides as
// pointers).
func toTraceSample(s Sample) TraceSample {
	ts := TraceSample{Time: s.Time, WetBulbC: float64(s.WetBulb), Mix: make(map[string]float64)}
	for _, src := range energy.AllSources() {
		if v := s.Mix[src]; v != 0 {
			ts.Mix[src.String()] = v
		}
	}
	if s.PUE > 0 {
		pue := s.PUE
		ts.PUE = &pue
	}
	if s.WSF >= 0 {
		wsf := s.WSF
		ts.WSF = &wsf
	}
	return ts
}

// toSample deserializes a TraceSample; the caller has already validated it.
func toSample(ts TraceSample) Sample {
	s := Sample{Time: ts.Time, WetBulb: units.Celsius(ts.WetBulbC), WSF: UnsetWSF}
	for name, v := range ts.Mix {
		s.Mix[sourceByName[name]] = v
	}
	if ts.PUE != nil {
		s.PUE = *ts.PUE
	}
	if ts.WSF != nil {
		s.WSF = *ts.WSF
	}
	return s
}

// Validate checks the trace against the schema: supported version and
// interpolation mode, at least one region, unique non-empty keys, at
// least one sample per region in strictly ascending time order, known
// source names, finite non-negative shares summing to 1 (±1e-6), finite
// wet-bulb readings, and positive/non-negative override values.
func (tr Trace) Validate() error {
	if tr.Version != TraceVersion {
		return fmt.Errorf("feed: trace version %d, this build reads version %d", tr.Version, TraceVersion)
	}
	switch tr.Interp {
	case "", InterpHold, InterpLinear:
	default:
		return fmt.Errorf("feed: unknown interpolation mode %q", tr.Interp)
	}
	if len(tr.Regions) == 0 {
		return fmt.Errorf("feed: trace has no regions")
	}
	seen := make(map[string]bool, len(tr.Regions))
	for _, rt := range tr.Regions {
		if rt.Key == "" {
			return fmt.Errorf("feed: trace region with empty key")
		}
		if seen[rt.Key] {
			return fmt.Errorf("feed: trace region %q appears twice", rt.Key)
		}
		seen[rt.Key] = true
		if len(rt.Samples) == 0 {
			return fmt.Errorf("feed: trace region %q has no samples", rt.Key)
		}
		for i, ts := range rt.Samples {
			if i > 0 && !rt.Samples[i-1].Time.Before(ts.Time) {
				return fmt.Errorf("feed: trace region %q samples out of order at index %d (%v after %v)",
					rt.Key, i, ts.Time, rt.Samples[i-1].Time)
			}
			if err := validateSample(ts); err != nil {
				return fmt.Errorf("feed: trace region %q sample %d (%v): %w", rt.Key, i, ts.Time, err)
			}
		}
	}
	return nil
}

func validateSample(ts TraceSample) error {
	total := 0.0
	for name, v := range ts.Mix {
		if _, ok := sourceByName[name]; !ok {
			return fmt.Errorf("unknown energy source %q", name)
		}
		if math.IsNaN(v) || math.IsInf(v, 0) || v < 0 {
			return fmt.Errorf("source %q share %g is not a finite non-negative number", name, v)
		}
		total += v
	}
	if math.Abs(total-1) > 1e-6 {
		return fmt.Errorf("mix shares sum to %.7f, want 1", total)
	}
	if math.IsNaN(ts.WetBulbC) || math.IsInf(ts.WetBulbC, 0) {
		return fmt.Errorf("wet-bulb %g is not finite", ts.WetBulbC)
	}
	if ts.PUE != nil && !(*ts.PUE > 0 && !math.IsInf(*ts.PUE, 0)) {
		return fmt.Errorf("pue override %g is not positive and finite", *ts.PUE)
	}
	if ts.WSF != nil && !(*ts.WSF >= 0 && !math.IsInf(*ts.WSF, 0)) {
		return fmt.Errorf("wsf override %g is not non-negative and finite", *ts.WSF)
	}
	return nil
}

// Span returns the earliest sample instant across all regions and the
// hour count that covers every sample ([start, start+hours) contains each
// one) — how the facade sizes an Environment around a replay trace.
func (tr Trace) Span() (start time.Time, hours int) {
	var end time.Time
	for _, rt := range tr.Regions {
		if len(rt.Samples) == 0 {
			continue
		}
		if first := rt.Samples[0].Time; start.IsZero() || first.Before(start) {
			start = first
		}
		if last := rt.Samples[len(rt.Samples)-1].Time; last.After(end) {
			end = last
		}
	}
	if start.IsZero() {
		return time.Time{}, 0
	}
	return start, int(end.Sub(start)/time.Hour) + 1
}

// Record samples the provider hourly over [start, start+hours) for the
// given region keys and returns the trace that replays it: with the
// default hold interpolation, NewReplay over the result answers At
// bit-identically to p at every instant of the span — the property the
// record→replay round-trip tests pin down. This is what waterwised
// -record writes.
//
// Only deterministic providers (ForecastHorizon 0) can be recorded: a
// provider that forecasts — Live — answers instant queries from its
// current cache, not from a covered span, so hourly resampling would
// fabricate a flat series; capturing a live feed means polling it as
// wall time passes, which is a different tool.
func Record(p Provider, keys []string, start time.Time, hours int) (Trace, error) {
	if hours <= 0 {
		return Trace{}, fmt.Errorf("feed: record needs a positive horizon, got %d hours", hours)
	}
	if p.ForecastHorizon() > 0 {
		return Trace{}, fmt.Errorf("feed: cannot record the %s provider: it serves cached/predicted readings, not a covered span — every sampled hour would repeat the current value", p.Name())
	}
	if len(keys) == 0 {
		keys = p.Regions()
	}
	tr := Trace{Version: TraceVersion, Interp: InterpHold}
	for _, key := range keys {
		rt := RegionTrace{Key: key, Samples: make([]TraceSample, 0, hours)}
		for h := 0; h < hours; h++ {
			s, err := p.At(key, start.Add(time.Duration(h)*time.Hour))
			if err != nil {
				return Trace{}, fmt.Errorf("feed: recording %q hour %d: %w", key, h, err)
			}
			ts := toTraceSample(s)
			ts.Time = start.Add(time.Duration(h) * time.Hour)
			rt.Samples = append(rt.Samples, ts)
		}
		tr.Regions = append(tr.Regions, rt)
	}
	return tr, nil
}

// Format identifies a trace file encoding.
type Format string

// The supported trace encodings.
const (
	// FormatJSON is the canonical schema: one Trace document.
	FormatJSON Format = "json"
	// FormatCSV is the flat row-per-sample form (header row, one line
	// per region-instant); it cannot carry an interpolation mode, so CSV
	// traces always replay with hold semantics.
	FormatCSV Format = "csv"
)

// FormatForPath picks the encoding from a file extension (".json" or
// ".csv", case-insensitive).
func FormatForPath(path string) (Format, error) {
	switch strings.ToLower(filepath.Ext(path)) {
	case ".json":
		return FormatJSON, nil
	case ".csv":
		return FormatCSV, nil
	default:
		return "", fmt.Errorf("feed: cannot infer trace format from %q (want .json or .csv)", path)
	}
}

// WriteTrace encodes the trace to w in the given format. The trace is
// validated first, so a written file always reads back — and reads back
// meaning the same thing: a linear-interpolation trace is refused CSV
// encoding (the flat form cannot carry the mode and would silently
// replay with hold semantics).
func WriteTrace(w io.Writer, tr Trace, format Format) error {
	if err := tr.Validate(); err != nil {
		return err
	}
	if format == FormatCSV && tr.Interp == InterpLinear {
		return fmt.Errorf("feed: CSV cannot carry the %s interpolation mode (it would read back as %s); write JSON instead", InterpLinear, InterpHold)
	}
	switch format {
	case FormatJSON:
		enc := json.NewEncoder(w)
		enc.SetIndent("", " ")
		return enc.Encode(tr)
	case FormatCSV:
		return writeCSV(w, tr)
	default:
		return fmt.Errorf("feed: unknown trace format %q", format)
	}
}

// ReadTrace decodes and validates a trace from r in the given format.
func ReadTrace(r io.Reader, format Format) (Trace, error) {
	var tr Trace
	var err error
	switch format {
	case FormatJSON:
		err = json.NewDecoder(r).Decode(&tr)
		if err != nil {
			err = fmt.Errorf("feed: decoding trace JSON: %w", err)
		}
	case FormatCSV:
		tr, err = readCSV(r)
	default:
		return Trace{}, fmt.Errorf("feed: unknown trace format %q", format)
	}
	if err != nil {
		return Trace{}, err
	}
	if err := tr.Validate(); err != nil {
		return Trace{}, err
	}
	return tr, nil
}

// WriteTraceFile writes the trace to path, picking the format from the
// extension.
func WriteTraceFile(path string, tr Trace) error {
	format, err := FormatForPath(path)
	if err != nil {
		return err
	}
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := WriteTrace(f, tr, format); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// ReadTraceFile reads and validates the trace at path, picking the format
// from the extension.
func ReadTraceFile(path string) (Trace, error) {
	format, err := FormatForPath(path)
	if err != nil {
		return Trace{}, err
	}
	f, err := os.Open(path)
	if err != nil {
		return Trace{}, err
	}
	defer f.Close()
	return ReadTrace(f, format)
}

// csvHeader is the fixed CSV column set: identity, scalars, then one
// column per energy source in Fig. 1 order. Empty pue/wsf cells mean "no
// override".
func csvHeader() []string {
	h := []string{"time", "region", "wet_bulb_c", "pue", "wsf"}
	for _, s := range energy.AllSources() {
		h = append(h, s.String())
	}
	return h
}

// fmtFloat renders a float with the shortest representation that parses
// back bit-exact, so CSV traces round-trip losslessly like JSON ones.
func fmtFloat(v float64) string { return strconv.FormatFloat(v, 'g', -1, 64) }

func writeCSV(w io.Writer, tr Trace) error {
	cw := csv.NewWriter(w)
	if err := cw.Write(csvHeader()); err != nil {
		return err
	}
	for _, rt := range tr.Regions {
		for _, ts := range rt.Samples {
			row := []string{ts.Time.UTC().Format(time.RFC3339Nano), rt.Key, fmtFloat(ts.WetBulbC), "", ""}
			if ts.PUE != nil {
				row[3] = fmtFloat(*ts.PUE)
			}
			if ts.WSF != nil {
				row[4] = fmtFloat(*ts.WSF)
			}
			for _, s := range energy.AllSources() {
				row = append(row, fmtFloat(ts.Mix[s.String()]))
			}
			if err := cw.Write(row); err != nil {
				return err
			}
		}
	}
	cw.Flush()
	return cw.Error()
}

func readCSV(r io.Reader) (Trace, error) {
	cr := csv.NewReader(r)
	header, err := cr.Read()
	if err != nil {
		return Trace{}, fmt.Errorf("feed: reading trace CSV header: %w", err)
	}
	want := csvHeader()
	if len(header) != len(want) {
		return Trace{}, fmt.Errorf("feed: trace CSV header has %d columns, want %d (%v)", len(header), len(want), want)
	}
	for i, col := range want {
		if strings.TrimSpace(header[i]) != col {
			return Trace{}, fmt.Errorf("feed: trace CSV column %d is %q, want %q", i, header[i], col)
		}
	}
	byKey := make(map[string]*RegionTrace)
	var order []string
	line := 1
	for {
		row, err := cr.Read()
		if err == io.EOF {
			break
		}
		line++
		if err != nil {
			return Trace{}, fmt.Errorf("feed: trace CSV line %d: %w", line, err)
		}
		at, err := time.Parse(time.RFC3339Nano, row[0])
		if err != nil {
			return Trace{}, fmt.Errorf("feed: trace CSV line %d: bad time %q: %w", line, row[0], err)
		}
		key := row[1]
		ts := TraceSample{Time: at, Mix: make(map[string]float64)}
		if ts.WetBulbC, err = strconv.ParseFloat(row[2], 64); err != nil {
			return Trace{}, fmt.Errorf("feed: trace CSV line %d: bad wet_bulb_c %q: %w", line, row[2], err)
		}
		if row[3] != "" {
			pue, err := strconv.ParseFloat(row[3], 64)
			if err != nil {
				return Trace{}, fmt.Errorf("feed: trace CSV line %d: bad pue %q: %w", line, row[3], err)
			}
			ts.PUE = &pue
		}
		if row[4] != "" {
			wsf, err := strconv.ParseFloat(row[4], 64)
			if err != nil {
				return Trace{}, fmt.Errorf("feed: trace CSV line %d: bad wsf %q: %w", line, row[4], err)
			}
			ts.WSF = &wsf
		}
		for i, s := range energy.AllSources() {
			v, err := strconv.ParseFloat(row[5+i], 64)
			if err != nil {
				return Trace{}, fmt.Errorf("feed: trace CSV line %d: bad %s share %q: %w", line, s, row[5+i], err)
			}
			if v != 0 {
				ts.Mix[s.String()] = v
			}
		}
		rt := byKey[key]
		if rt == nil {
			rt = &RegionTrace{Key: key}
			byKey[key] = rt
			order = append(order, key)
		}
		rt.Samples = append(rt.Samples, ts)
	}
	// Regions keep first-appearance order, matching how writeCSV emits
	// them, so a CSV round trip preserves region order too.
	tr := Trace{Version: TraceVersion}
	for _, key := range order {
		tr.Regions = append(tr.Regions, *byKey[key])
	}
	return tr, nil
}
