package feed

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"waterwise/internal/energy"
)

// Fault names one injectable feed failure mode for the Chaos wrapper.
type Fault int32

// The Chaos fault modes. FaultNone is the zero value: full passthrough.
const (
	// FaultNone disables injection: At and Transport delegate unchanged.
	FaultNone Fault = iota
	// FaultOutage emulates an unreachable upstream: the Provider view
	// serves the last good sample per region (readings age, Health goes
	// stale — a feed outage never errors a scheduling round), and the
	// Transport view fails every request with a connection-style error.
	FaultOutage
	// FaultThrottle emulates a rate-limiting upstream: the Provider view
	// keeps serving (throttling starves refreshes, it does not corrupt
	// cached data), and the Transport view answers 429 with a Retry-After
	// header — the storm the Live provider's backoff must honor.
	FaultThrottle
)

// String names the fault mode for reports and logs.
func (f Fault) String() string {
	switch f {
	case FaultOutage:
		return "outage"
	case FaultThrottle:
		return "throttle"
	default:
		return "none"
	}
}

// Chaos wraps an inner Provider with switchable fault injection — the
// feed half of the scenario harness (internal/scenario). It serves two
// views of the same fault switch:
//
//   - the Provider view (Chaos itself) for environments built directly
//     over a deterministic provider: with no fault it is a pure
//     passthrough (same samples, same decisions — the no-fault
//     equivalence test pins this), and during an outage it serves each
//     region's last good sample while Health reports rising staleness;
//   - the Transport view (Transport method) for environments built over
//     a Live provider: an http.RoundTripper serving the inner provider
//     as an electricityMaps-style upstream, failing or throttling
//     according to the same switch, so Live's TTL/backoff/fallback
//     ladder is exercised by scenario fault schedules instead of
//     bespoke httptest servers.
//
// SetFault may be called at any time from any goroutine; At and the
// Transport are safe for concurrent use.
type Chaos struct {
	inner Provider
	mode  atomic.Int32
	// retryAfter is the Retry-After delay (seconds, atomic) the Transport
	// advertises during FaultThrottle.
	retryAfter atomic.Int64
	// faultAt is the wall instant the current fault began (UnixNano),
	// for staleness accounting during an outage.
	faultAt atomic.Int64

	mu   sync.Mutex
	last map[string]Sample // last good sample per region, for outage serving
}

// NewChaos wraps inner. The wrapper starts in FaultNone: bit-for-bit
// passthrough.
func NewChaos(inner Provider) *Chaos {
	return &Chaos{inner: inner, last: make(map[string]Sample)}
}

// SetFault switches the active fault mode. retryAfter configures the
// Retry-After header advertised during FaultThrottle (ignored otherwise;
// zero omits the header).
func (c *Chaos) SetFault(f Fault, retryAfter time.Duration) {
	c.retryAfter.Store(int64(retryAfter / time.Second))
	c.faultAt.Store(time.Now().UnixNano())
	c.mode.Store(int32(f))
}

// ActiveFault reports the current fault mode.
func (c *Chaos) ActiveFault() Fault { return Fault(c.mode.Load()) }

// Name implements Provider, delegating to the inner provider (the
// wrapper is transparent to anything keying on provider identity).
func (c *Chaos) Name() string { return c.inner.Name() }

// Regions implements Provider by delegation — the wrapper must keep the
// region set intact so environment construction validates unchanged.
func (c *Chaos) Regions() []string { return c.inner.Regions() }

// ForecastHorizon implements Provider by delegation.
func (c *Chaos) ForecastHorizon() time.Duration { return c.inner.ForecastHorizon() }

// At implements Provider. FaultNone delegates (one atomic load on the
// hot path — exactly free); FaultOutage serves the region's last good
// sample, holding the world still the way a dead upstream holds a TTL
// cache still; FaultThrottle delegates (throttling is a Transport-level
// fault). The first At per region always reaches the inner provider, so
// an outage injected before any reading still answers.
func (c *Chaos) At(key string, t time.Time) (Sample, error) {
	if Fault(c.mode.Load()) == FaultOutage {
		c.mu.Lock()
		s, ok := c.last[key]
		c.mu.Unlock()
		if ok {
			return s, nil
		}
		// No reading cached yet: fall through to the inner provider so a
		// cold region is primed rather than erroring a round.
	}
	s, err := c.inner.At(key, t)
	if err != nil {
		return s, err
	}
	c.mu.Lock()
	c.last[key] = s
	c.mu.Unlock()
	return s, nil
}

// Health implements HealthReporter: the inner provider's health (or a
// trivially fresh record for deterministic providers), overlaid with the
// injected fault — during an outage staleness is the wall time since the
// fault began and Stale is set, so the status and metrics surfaces show
// exactly what a real dead upstream would.
func (c *Chaos) Health() Health {
	h := HealthOf(c.inner)
	switch Fault(c.mode.Load()) {
	case FaultOutage:
		age := time.Since(time.Unix(0, c.faultAt.Load())).Seconds()
		if age > h.StalenessSeconds {
			h.StalenessSeconds = age
		}
		h.Stale = true
		h.LastError = "injected outage"
	case FaultThrottle:
		h.LastError = "injected 429 storm"
	}
	return h
}

// chaosTransport is the RoundTripper view of a Chaos switch.
type chaosTransport struct{ c *Chaos }

// Transport returns an http.RoundTripper serving the inner provider as
// an electricityMaps-style upstream (GET …/v1/environment/{region}),
// subject to the same fault switch: healthy requests answer 200 with a
// Live-compatible payload sampled from the inner provider at the current
// wall instant, FaultOutage fails the request outright (a
// connection-level error, what an unreachable host produces), and
// FaultThrottle answers 429 with the configured Retry-After. Install it
// as LiveConfig.Client's transport to put a Live provider under
// scenario-controlled fault schedules with no network and no test
// server.
func (c *Chaos) Transport() http.RoundTripper { return chaosTransport{c} }

// RoundTrip implements http.RoundTripper.
func (t chaosTransport) RoundTrip(req *http.Request) (*http.Response, error) {
	switch Fault(t.c.mode.Load()) {
	case FaultOutage:
		return nil, fmt.Errorf("feed: injected outage: %s unreachable", req.URL.Host)
	case FaultThrottle:
		resp := &http.Response{
			StatusCode: http.StatusTooManyRequests,
			Status:     "429 Too Many Requests",
			Header:     make(http.Header),
			Body:       io.NopCloser(strings.NewReader("injected 429 storm")),
			Request:    req,
		}
		if ra := t.c.retryAfter.Load(); ra > 0 {
			resp.Header.Set("Retry-After", strconv.FormatInt(ra, 10))
		}
		return resp, nil
	}
	const prefix = "/v1/environment/"
	if !strings.HasPrefix(req.URL.Path, prefix) {
		return &http.Response{
			StatusCode: http.StatusNotFound,
			Status:     "404 Not Found",
			Header:     make(http.Header),
			Body:       io.NopCloser(strings.NewReader("unknown path")),
			Request:    req,
		}, nil
	}
	key := strings.TrimPrefix(req.URL.Path, prefix)
	s, err := t.c.At(key, time.Now().UTC())
	if err != nil {
		return &http.Response{
			StatusCode: http.StatusNotFound,
			Status:     "404 Not Found",
			Header:     make(http.Header),
			Body:       io.NopCloser(strings.NewReader(err.Error())),
			Request:    req,
		}, nil
	}
	payload := livePayload{
		Zone:           key,
		Datetime:       s.Time,
		PowerBreakdown: make(map[string]float64, len(energy.AllSources())),
		WetBulbC:       float64(s.WetBulb),
	}
	for _, src := range energy.AllSources() {
		if v := s.Mix[src]; v != 0 {
			payload.PowerBreakdown[src.String()] = v
		}
	}
	if s.PUE > 0 {
		payload.PUE = s.PUE
	}
	if s.WSF >= 0 {
		wsf := s.WSF
		payload.WSF = &wsf
	}
	body, err := json.Marshal(payload)
	if err != nil {
		return nil, err
	}
	return &http.Response{
		StatusCode: http.StatusOK,
		Status:     "200 OK",
		Header:     http.Header{"Content-Type": []string{"application/json"}},
		Body:       io.NopCloser(strings.NewReader(string(body))),
		Request:    req,
	}, nil
}
