package gridmix

import (
	"math"
	"testing"
	"testing/quick"
	"time"

	"waterwise/internal/energy"
	"waterwise/internal/stats"
)

var testStart = time.Date(2023, 7, 1, 0, 0, 0, 0, time.UTC)

func testParams() Params {
	return Params{
		Base: energy.Mix{
			energy.Solar: 0.15, energy.Wind: 0.15, energy.Nuclear: 0.25,
			energy.Gas: 0.35, energy.Hydro: 0.10,
		},
		Dispatchable:    []energy.Source{energy.Gas, energy.Hydro},
		WindVariability: 0.4, WindPersistence: 0.8, ShareNoise: 0.05,
	}
}

func TestValidate(t *testing.T) {
	good := testParams()
	if err := good.Validate(); err != nil {
		t.Fatalf("valid params rejected: %v", err)
	}
	bad := testParams()
	bad.Base = energy.Mix{}
	if err := bad.Validate(); err == nil {
		t.Error("empty base mix accepted")
	}
	bad = testParams()
	bad.Base[energy.Gas] = 0.8 // sums to 1.45
	if err := bad.Validate(); err == nil {
		t.Error("non-normalized base mix accepted")
	}
	bad = testParams()
	bad.Dispatchable = []energy.Source{energy.Coal} // zero base share
	if err := bad.Validate(); err == nil {
		t.Error("zero-share dispatchable accepted")
	}
	bad = testParams()
	bad.WindPersistence = 1.0
	if err := bad.Validate(); err == nil {
		t.Error("wind persistence 1.0 accepted")
	}
}

func TestGenerateNormalizedEveryHour(t *testing.T) {
	s, err := Generate(testParams(), testStart, 24*14, 3)
	if err != nil {
		t.Fatal(err)
	}
	for h, m := range s.Mixes {
		if math.Abs(m.Total()-1) > 1e-9 {
			t.Fatalf("hour %d: mix total %g != 1", h, m.Total())
		}
		for src, share := range m {
			if share < 0 {
				t.Fatalf("hour %d: negative share for %v", h, src)
			}
		}
	}
}

func TestSolarDiurnalPattern(t *testing.T) {
	s, err := Generate(testParams(), testStart, 24*30, 3)
	if err != nil {
		t.Fatal(err)
	}
	var nightSolar, middaySolar []float64
	for h, m := range s.Mixes {
		hod := (testStart.Hour() + h) % 24
		switch {
		case hod < 4:
			nightSolar = append(nightSolar, m[energy.Solar])
		case hod == 12 || hod == 13:
			middaySolar = append(middaySolar, m[energy.Solar])
		}
	}
	if mx, _ := stats.Max(nightSolar); mx > 1e-9 {
		t.Errorf("solar share at night = %g, want 0", mx)
	}
	if stats.Mean(middaySolar) < 0.2 {
		t.Errorf("midday solar share mean = %g, want substantially above the 0.15 base", stats.Mean(middaySolar))
	}
}

func TestLongRunAveragesNearBase(t *testing.T) {
	p := testParams()
	s, err := Generate(p, testStart, 24*365, 5)
	if err != nil {
		t.Fatal(err)
	}
	avg := map[energy.Source]float64{}
	for _, m := range s.Mixes {
		for src, share := range m {
			avg[energy.Source(src)] += share
		}
	}
	n := float64(len(s.Mixes))
	for src, base := range p.Base {
		if base == 0 {
			continue
		}
		got := avg[energy.Source(src)] / n
		if math.Abs(got-base) > 0.06 {
			t.Errorf("%v long-run share = %.3f, base %.3f (drift too large)", energy.Source(src), got, base)
		}
	}
}

func TestCarbonIntensityVariesOverTime(t *testing.T) {
	s, err := Generate(testParams(), testStart, 24*30, 7)
	if err != nil {
		t.Fatal(err)
	}
	var cis []float64
	for h := range s.Mixes {
		at := testStart.Add(time.Duration(h) * time.Hour)
		cis = append(cis, float64(s.CarbonIntensityAt(at, energy.Table)))
	}
	if sd := stats.StdDev(cis); sd < 5 {
		t.Errorf("CI stddev = %.1f, want meaningful temporal variation", sd)
	}
	mn, _ := stats.Min(cis)
	mx, _ := stats.Max(cis)
	if mx/mn < 1.1 {
		t.Errorf("CI range [%.0f, %.0f] too flat", mn, mx)
	}
}

func TestDeterminism(t *testing.T) {
	a, err := Generate(testParams(), testStart, 200, 11)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Generate(testParams(), testStart, 200, 11)
	if err != nil {
		t.Fatal(err)
	}
	for h := range a.Mixes {
		for src, share := range a.Mixes[h] {
			if b.Mixes[h][src] != share {
				t.Fatalf("hour %d source %v differs despite same seed", h, src)
			}
		}
	}
}

func TestSeriesClamping(t *testing.T) {
	s, err := Generate(testParams(), testStart, 24, 1)
	if err != nil {
		t.Fatal(err)
	}
	before := s.MixAt(testStart.Add(-10 * time.Hour))
	if math.Abs(before.Total()-1) > 1e-9 {
		t.Error("MixAt before start should clamp to first hour")
	}
	after := s.MixAt(testStart.Add(500 * time.Hour))
	if math.Abs(after.Total()-1) > 1e-9 {
		t.Error("MixAt after end should clamp to last hour")
	}
	empty := &Series{Start: testStart}
	if empty.MixAt(testStart).Total() != 0 {
		t.Error("empty series MixAt should be empty mix")
	}
	if empty.MeanCarbonIntensity(energy.Table) != 0 || empty.MeanEWIF(energy.Table) != 0 {
		t.Error("empty series means should be zero")
	}
}

func TestMeanHelpersConsistent(t *testing.T) {
	s, err := Generate(testParams(), testStart, 24*7, 13)
	if err != nil {
		t.Fatal(err)
	}
	var ciSum, ewSum float64
	for _, m := range s.Mixes {
		ciSum += float64(m.CarbonIntensity(energy.Table))
		ewSum += float64(m.EWIF(energy.Table))
	}
	n := float64(len(s.Mixes))
	if got := float64(s.MeanCarbonIntensity(energy.Table)); math.Abs(got-ciSum/n) > 1e-9 {
		t.Errorf("MeanCarbonIntensity = %v, want %v", got, ciSum/n)
	}
	if got := float64(s.MeanEWIF(energy.Table)); math.Abs(got-ewSum/n) > 1e-9 {
		t.Errorf("MeanEWIF = %v, want %v", got, ewSum/n)
	}
}

// Property: for any seed, every generated hour is a valid normalized mix
// with a carbon intensity within the possible source range.
func TestQuickGeneratedMixValidity(t *testing.T) {
	f := func(seed int64) bool {
		s, err := Generate(testParams(), testStart, 72, seed)
		if err != nil {
			return false
		}
		for _, m := range s.Mixes {
			if math.Abs(m.Total()-1) > 1e-9 {
				return false
			}
			ci := float64(m.CarbonIntensity(energy.Table))
			if ci < 10 || ci > 1100 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}
