// Package gridmix synthesizes hourly energy-mix series for regional power
// grids, standing in for the Electricity Maps live energy-mix breakdown the
// WaterWise paper consumes. Each region's grid is described by an annual
// average mix plus structural dynamics:
//
//   - solar follows a daylight curve (zero at night, peaking midday),
//   - wind follows a temporally correlated AR(1) process,
//   - dispatchable sources (gas, hydro, coal, ...) absorb the residual so
//     shares always sum to one.
//
// The resulting series exhibits the paper's key phenomenon (Fig. 2(e)):
// carbon intensity and water intensity vary over time and are often
// anti-correlated, because the water-thirsty low-carbon sources (hydro,
// biomass) ramp exactly when the low-water fossil sources ramp down.
package gridmix

import (
	"fmt"
	"math"
	"time"

	"waterwise/internal/energy"
	"waterwise/internal/stats"
	"waterwise/internal/units"
)

// Params describes one grid's generation structure.
type Params struct {
	// Base is the annual-average mix. It must be normalized (sum to 1); the
	// generator preserves each source's long-run average share.
	Base energy.Mix
	// Dispatchable lists the sources that ramp to absorb the residual when
	// variable renewables fluctuate; the residual is split among them in
	// proportion to their base shares. Sources not listed and not
	// solar/wind hold their base share (plus noise).
	Dispatchable []energy.Source
	// WindVariability is the relative standard deviation of the wind share
	// (0 disables wind fluctuation).
	WindVariability float64
	// WindPersistence is the AR(1) coefficient of the wind process in
	// [0, 1); higher values give longer wind "weather fronts".
	WindPersistence float64
	// ShareNoise is the relative noise applied to non-variable sources.
	ShareNoise float64
}

// Validate reports structural problems with the parameters.
func (p Params) Validate() error {
	if p.Base.Total() == 0 {
		return fmt.Errorf("gridmix: empty base mix")
	}
	if t := p.Base.Total(); math.Abs(t-1) > 1e-6 {
		return fmt.Errorf("gridmix: base mix sums to %.4f, want 1", t)
	}
	dispTotal := 0.0
	for _, s := range p.Dispatchable {
		dispTotal += p.Base[s]
	}
	if dispTotal <= 0 {
		return fmt.Errorf("gridmix: dispatchable sources have zero base share")
	}
	if p.WindPersistence < 0 || p.WindPersistence >= 1 {
		return fmt.Errorf("gridmix: wind persistence %.2f outside [0,1)", p.WindPersistence)
	}
	return nil
}

// Series is an hourly sequence of normalized mixes starting at Start.
type Series struct {
	Start time.Time
	Mixes []energy.Mix
}

// Generate produces an hourly mix series. Identical inputs always produce
// the identical series.
func Generate(p Params, start time.Time, hours int, seed int64) (*Series, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	rng := stats.NewRand(seed)
	s := &Series{Start: start, Mixes: make([]energy.Mix, hours)}

	disp := make(map[energy.Source]bool, len(p.Dispatchable))
	dispBase := 0.0
	for _, src := range p.Dispatchable {
		disp[src] = true
		dispBase += p.Base[src]
	}

	windState := 0.0 // AR(1) innovation state, in units of relative deviation
	for h := 0; h < hours; h++ {
		t := start.Add(time.Duration(h) * time.Hour)
		var mix energy.Mix

		// Variable renewables.
		solarBase := p.Base[energy.Solar]
		if solarBase > 0 {
			// Daylight curve with daily mean 1 (the pi factor compensates
			// for the half-sine's 1/pi average), so the long-run solar
			// share matches the base mix.
			mix[energy.Solar] = solarBase * math.Pi * daylight(t) * (1 + rng.Normal(0, p.ShareNoise/2))
			if mix[energy.Solar] < 0 {
				mix[energy.Solar] = 0
			}
		}
		windBase := p.Base[energy.Wind]
		if windBase > 0 {
			sigma := p.WindVariability * math.Sqrt(1-p.WindPersistence*p.WindPersistence)
			windState = p.WindPersistence*windState + rng.Normal(0, sigma)
			mix[energy.Wind] = windBase * (1 + windState)
			if mix[energy.Wind] < 0 {
				mix[energy.Wind] = 0
			}
		}

		// Steady sources, iterated in fixed source order so random draws —
		// and therefore the whole series — are deterministic per seed.
		fixed := 0.0
		for _, src := range energy.AllSources() {
			share := p.Base[src]
			if share == 0 || src == energy.Solar || src == energy.Wind || disp[src] {
				continue
			}
			v := share * (1 + rng.Normal(0, p.ShareNoise))
			if v < 0 {
				v = 0
			}
			mix[src] = v
			fixed += v
		}

		// Dispatchable backfill.
		residual := 1 - fixed - mix[energy.Solar] - mix[energy.Wind]
		if residual < 0.02 {
			residual = 0.02 // grids always keep some spinning reserve online
		}
		for _, src := range p.Dispatchable {
			mix[src] = residual * p.Base[src] / dispBase
		}

		s.Mixes[h] = mix.Normalize()
	}
	return s, nil
}

// daylight returns the solar availability factor in [0,1]: a half-sine over
// 06:00-18:00 local time, zero at night.
func daylight(t time.Time) float64 {
	hod := float64(t.Hour()) + float64(t.Minute())/60.0
	if hod < 6 || hod > 18 {
		return 0
	}
	return math.Sin(math.Pi * (hod - 6) / 12)
}

// index returns the hour index of t, clamped to the series.
func (s *Series) index(t time.Time) int {
	if len(s.Mixes) == 0 {
		return -1
	}
	h := int(t.Sub(s.Start) / time.Hour)
	if h < 0 {
		h = 0
	}
	if h >= len(s.Mixes) {
		h = len(s.Mixes) - 1
	}
	return h
}

// MixAt returns the normalized mix at time t (clamped to the series range).
func (s *Series) MixAt(t time.Time) energy.Mix {
	i := s.index(t)
	if i < 0 {
		return energy.Mix{}
	}
	return s.Mixes[i]
}

// CarbonIntensityAt returns the grid carbon intensity at time t under tbl.
func (s *Series) CarbonIntensityAt(t time.Time, tbl energy.FactorTable) units.CarbonIntensity {
	return s.MixAt(t).CarbonIntensity(tbl)
}

// EWIFAt returns the grid energy-water intensity factor at time t under tbl.
func (s *Series) EWIFAt(t time.Time, tbl energy.FactorTable) units.EWIF {
	return s.MixAt(t).EWIF(tbl)
}

// MeanCarbonIntensity averages the carbon intensity over the whole series.
func (s *Series) MeanCarbonIntensity(tbl energy.FactorTable) units.CarbonIntensity {
	if len(s.Mixes) == 0 {
		return 0
	}
	sum := 0.0
	for _, m := range s.Mixes {
		sum += float64(m.CarbonIntensity(tbl))
	}
	return units.CarbonIntensity(sum / float64(len(s.Mixes)))
}

// MeanEWIF averages the EWIF over the whole series.
func (s *Series) MeanEWIF(tbl energy.FactorTable) units.EWIF {
	if len(s.Mixes) == 0 {
		return 0
	}
	sum := 0.0
	for _, m := range s.Mixes {
		sum += float64(m.EWIF(tbl))
	}
	return units.EWIF(sum / float64(len(s.Mixes)))
}
