package core

import (
	"math"
	"testing"
	"time"

	"waterwise/internal/cluster"
	"waterwise/internal/region"
	"waterwise/internal/trace"
	"waterwise/internal/units"
)

// largeBatchJobs builds a 1000-job burst spread across home regions with
// varied durations/energies, all submitted at the horizon start.
func largeBatchJobs(env *region.Environment, n int) []*trace.Job {
	ids := env.IDs()
	benches := []string{"canneal", "dedup", "blackscholes", "swaptions", "netdedup"}
	jobs := make([]*trace.Job, n)
	for i := range jobs {
		dur := time.Duration(5+i%37) * time.Minute
		jobs[i] = &trace.Job{
			ID: i, Submit: testStart, Benchmark: benches[i%len(benches)],
			Home:     ids[i%len(ids)],
			Duration: dur, EstDuration: dur,
			Energy: units.KWh(0.03 + 0.002*float64(i%11)), EstEnergy: units.KWh(0.03 + 0.002*float64(i%11)),
		}
	}
	return jobs
}

// largeBatchSchedule runs one 1000-job scheduling round at the given worker
// count and returns the decisions plus the round MILP objective.
func largeBatchSchedule(t *testing.T, workers int) ([]cluster.Decision, float64) {
	t.Helper()
	env := testEnv(t)
	jobs := largeBatchJobs(env, 1000)
	cfg := DefaultConfig()
	cfg.MaxBatch = 1000
	cfg.Solver.Workers = workers
	cfg.Solver.TimeLimit = 0 // determinism needs runs-to-completion
	cfg.Solver.MaxNodes = 200000
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	free := map[region.ID]int{}
	for _, r := range env.Regions {
		free[r.ID] = 220 // 5 regions x 220 = enough for the whole burst
	}
	dec, err := s.Schedule(testCtx(t, env, jobs, 0.5, free))
	if err != nil {
		t.Fatal(err)
	}
	obj, ok := s.LastRoundObjective()
	if !ok {
		t.Fatal("round was not decided by the optimizer")
	}
	if len(dec) != len(jobs) {
		t.Fatalf("decided %d/%d jobs", len(dec), len(jobs))
	}
	return dec, obj
}

// TestLargeBatchSchedulerWorkersDeterminism proves the ROADMAP's "Workers > 1
// defaults once batches grow beyond ~200 jobs" item at the scheduler level: a
// 1000-job round decided with the auto worker default (Workers == 0 →
// AutoWorkers) must match a serial round decision for decision.
func TestLargeBatchSchedulerWorkersDeterminism(t *testing.T) {
	serialDec, serialObj := largeBatchSchedule(t, 1)
	autoDec, autoObj := largeBatchSchedule(t, 0) // 0 → AutoWorkers(1000)
	if math.Abs(serialObj-autoObj) > 1e-9 {
		t.Fatalf("round objective diverged: serial %.12f, auto-workers %.12f", serialObj, autoObj)
	}
	if len(serialDec) != len(autoDec) {
		t.Fatalf("decision counts diverged: serial %d, auto-workers %d", len(serialDec), len(autoDec))
	}
	for i := range serialDec {
		if serialDec[i].Job.ID != autoDec[i].Job.ID || serialDec[i].Region != autoDec[i].Region {
			t.Fatalf("decision %d diverged: serial job %d -> %s, auto job %d -> %s",
				i, serialDec[i].Job.ID, serialDec[i].Region, autoDec[i].Job.ID, autoDec[i].Region)
		}
	}
}
