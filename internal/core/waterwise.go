// Package core implements the WaterWise scheduler — the paper's primary
// contribution: a carbon- and water-footprint co-optimizing job scheduler
// for geographically distributed data centers (Section 4).
//
// Each scheduling round, the Optimization Decision Controller builds the
// MILP of Eq. 8:
//
//	min Σ_m Σ_n x_mn · [ λ_CO2·CO2(m,n)/CO2max_m + λ_H2O·H2O(m,n)/H2Omax_m
//	                     + λ_ref·(λ_CO2·CO2ref_n + λ_H2O·H2Oref_n) ]
//
// subject to Eq. 9 (each job placed exactly once), Eq. 10 (regional
// capacity), and Eq. 11 (transfer latency within the delay tolerance:
// Σ_n x_mn·L_mn/t_mn ≤ TOL%). When the hard problem is infeasible — or when
// demand exceeds total capacity and the slack manager has pre-selected the
// most urgent jobs (Algorithm 1) — the controller softens Eq. 11 with
// penalty variables (Eq. 12–13).
//
// The history learner feeds each region's recent normalized carbon/water
// intensity back into the objective (the CO2ref/H2Oref terms) so the
// controller avoids regions that have recently been expensive even if the
// instantaneous reading momentarily dips.
package core

import (
	"fmt"
	"math"
	"sort"
	"time"

	"waterwise/internal/cluster"
	"waterwise/internal/lp"
	"waterwise/internal/milp"
	"waterwise/internal/region"
	"waterwise/internal/trace"
	"waterwise/internal/workload"
)

// Config parameterizes the WaterWise controller. The zero value is not
// usable; construct with New which applies the paper's defaults.
type Config struct {
	// LambdaCarbon (λ_CO2) weights the carbon objective; paper default 0.5.
	LambdaCarbon float64
	// LambdaWater (λ_H2O) weights the water objective; paper default 0.5.
	// LambdaCarbon + LambdaWater must equal 1.
	LambdaWater float64
	// LambdaRef (λ_ref) weights the history learner; paper default 0.1.
	LambdaRef float64
	// HistoryWindow is the history learner's window in scheduling rounds;
	// paper default 10.
	HistoryWindow int
	// PenaltySigma (σ) prices delay-tolerance violations in the softened
	// problem (Eq. 12).
	PenaltySigma float64
	// MaxBatch caps the number of jobs put into a single MILP; overflow
	// jobs wait for the next round (most urgent first). Keeps the solver's
	// decision overhead low under Alibaba-level arrival bursts.
	MaxBatch int
	// Solver bounds the branch-and-bound search.
	Solver milp.Options

	// PerfWeight (λ_perf) optionally adds performance as a third objective
	// (paper §7 "Performance Considerations"): each pair's normalized
	// service-time impact — transfer latency relative to the job's
	// execution time — joins the objective with this weight. 0 disables it
	// (the paper's evaluated configuration).
	PerfWeight float64
	// CostWeight (λ_cost) optionally adds financial cost as an objective
	// (paper §7 "Cost Considerations"): each pair's electricity spend,
	// normalized per job across regions. 0 disables it.
	CostWeight float64

	// DisableHistory turns off the history learner (ablation).
	DisableHistory bool
	// DisableSlackManager replaces urgency ordering with FIFO (ablation).
	DisableSlackManager bool
	// GreedyController replaces the MILP with per-job greedy argmin
	// (ablation for the "why MILP" design question).
	GreedyController bool
}

// DefaultConfig returns the paper's default parameters: equal carbon/water
// weights, λ_ref = 0.1, window 10.
func DefaultConfig() Config {
	return Config{
		LambdaCarbon:  0.5,
		LambdaWater:   0.5,
		LambdaRef:     0.1,
		HistoryWindow: 10,
		PenaltySigma:  10,
		MaxBatch:      64,
		Solver:        milp.Options{MaxNodes: 500, RelGap: 1e-4, TimeLimit: 250 * time.Millisecond},
	}
}

// Scheduler is the WaterWise Optimization Decision Controller plus slack
// manager and history learner. It implements cluster.Scheduler.
type Scheduler struct {
	cfg Config
	// history learner ring buffers, per region: normalized carbon and
	// water intensities of recent rounds.
	histCarbon map[region.ID][]float64
	histWater  map[region.ID][]float64
	// Softened counts rounds where the soft controller was needed
	// (exported for tests and the overhead study via Stats).
	softened int
	rounds   int
	// models caches the round MILP skeleton per batch shape: the
	// constraint structure (Eq. 9 assignment rows + Eq. 10 capacity rows)
	// is identical between rounds with the same job count, so only the
	// objective coefficients, variable bounds, and capacity RHS values are
	// rewritten each round instead of rebuilding the whole problem.
	models map[modelKey]*roundModel
	// solverStats aggregates branch-and-bound instrumentation across
	// rounds for the Fig. 13 decision-overhead accounting.
	solverStats milp.Stats
	// lastObj is the MILP objective of the most recent round's solve (set
	// when the round was decided by the optimizer, not the greedy fallback).
	// The cross-round warm-start differential tests compare it between a
	// repricing and a cold-solving controller fed identical rounds.
	lastObj    float64
	lastObjSet bool
	// Per-round scratch, reused across Schedule calls (a Scheduler is
	// single-threaded by the cluster.Scheduler contract, so pooling here is
	// safe): candidate rows and backing array, capacity counts, urgency
	// scores, and greedy capacity leftovers. Keeps the serving hot path off
	// the allocator.
	candRows [][]candidate
	candBuf  []candidate
	capsBuf  []int
	urgBuf   []urgentJob
	leftBuf  []int
}

type modelKey struct{ m, n int }

// roundModel is a cached MILP skeleton for an M-jobs x N-regions round.
type roundModel struct {
	prob    *milp.Problem
	capRows []int     // constraint indices of the Eq. 10 capacity rows
	obj     []float64 // reusable objective buffer (len M*N)
}

// model returns the cached MILP skeleton for an MxN round, building it on
// first use.
func (s *Scheduler) model(M, N int) (*roundModel, error) {
	key := modelKey{M, N}
	if rm, ok := s.models[key]; ok {
		return rm, nil
	}
	prob := milp.New(M * N)
	for v := 0; v < M*N; v++ {
		// Eq. 9 (Σ_n x_mn = 1, x >= 0) implies x_mn <= 1, so the binaries
		// need no explicit upper-bound rows.
		if err := prob.SetImpliedBinary(v); err != nil {
			return nil, err
		}
	}
	// Eq. 9: each job assigned to exactly one region.
	for m := 0; m < M; m++ {
		terms := make([]lp.Term, N)
		for n := 0; n < N; n++ {
			terms[n] = lp.Term{Var: m*N + n, Coef: 1}
		}
		if _, err := prob.AddConstraint(terms, lp.EQ, 1); err != nil {
			return nil, err
		}
	}
	// Eq. 10: regional capacity (RHS rewritten every round).
	capRows := make([]int, N)
	for n := 0; n < N; n++ {
		terms := make([]lp.Term, M)
		for m := 0; m < M; m++ {
			terms[m] = lp.Term{Var: m*N + n, Coef: 1}
		}
		row, err := prob.AddConstraint(terms, lp.LE, 0)
		if err != nil {
			return nil, err
		}
		capRows[n] = row
	}
	// Compile the skeleton's sparse matrix once: every round with this batch
	// shape — and every clone the branch-and-bound workers take — shares the
	// same immutable CSC arrays instead of re-deriving them per solve.
	prob.Compile()
	rm := &roundModel{prob: prob, capRows: capRows, obj: make([]float64, M*N)}
	s.models[key] = rm
	return rm, nil
}

// New returns a WaterWise scheduler, validating and defaulting cfg.
func New(cfg Config) (*Scheduler, error) {
	def := DefaultConfig()
	if cfg.LambdaCarbon == 0 && cfg.LambdaWater == 0 {
		cfg.LambdaCarbon, cfg.LambdaWater = def.LambdaCarbon, def.LambdaWater
	}
	if math.Abs(cfg.LambdaCarbon+cfg.LambdaWater-1) > 1e-9 {
		return nil, fmt.Errorf("core: λ_CO2 + λ_H2O = %g, must equal 1", cfg.LambdaCarbon+cfg.LambdaWater)
	}
	if cfg.LambdaCarbon < 0 || cfg.LambdaWater < 0 {
		return nil, fmt.Errorf("core: negative objective weight")
	}
	if cfg.LambdaRef == 0 {
		cfg.LambdaRef = def.LambdaRef
	}
	if cfg.HistoryWindow <= 0 {
		cfg.HistoryWindow = def.HistoryWindow
	}
	if cfg.PenaltySigma <= 0 {
		cfg.PenaltySigma = def.PenaltySigma
	}
	if cfg.MaxBatch <= 0 {
		cfg.MaxBatch = def.MaxBatch
	}
	if cfg.Solver.MaxNodes == 0 && cfg.Solver.TimeLimit == 0 {
		cfg.Solver = def.Solver
	}
	return &Scheduler{
		cfg:        cfg,
		histCarbon: make(map[region.ID][]float64),
		histWater:  make(map[region.ID][]float64),
		models:     make(map[modelKey]*roundModel),
	}, nil
}

// Name implements cluster.Scheduler.
func (s *Scheduler) Name() string { return "waterwise" }

// Stats reports internal counters: total rounds and how many needed the
// softened controller.
func (s *Scheduler) Stats() (rounds, softened int) { return s.rounds, s.softened }

// SolverStats reports the branch-and-bound instrumentation accumulated
// across all scheduling rounds: nodes, simplex iterations, warm-start hit
// rate, and solver wall time (the decision-overhead breakdown of Fig. 13).
func (s *Scheduler) SolverStats() milp.Stats { return s.solverStats }

// LastRoundObjective reports the MILP objective of the most recent
// scheduling round, and whether that round was decided by the optimizer
// (false when the round fell back to the greedy controller or decided
// nothing).
func (s *Scheduler) LastRoundObjective() (float64, bool) { return s.lastObj, s.lastObjSet }

// urgentJob pairs a pending job with its Eq. 14 urgency score.
type urgentJob struct {
	pj *cluster.PendingJob
	u  float64
}

// candidate carries the per-(job, region) scoring inputs for one round.
type candidate struct {
	carbon  float64 // absolute carbon estimate incl. transfer (g)
	water   float64 // absolute water estimate incl. transfer (L)
	ratio   float64 // L_mn / t_mn for Eq. 11
	cost    float64 // electricity spend estimate (USD), for the §7 extension
	latency time.Duration
}

// Schedule implements cluster.Scheduler: Algorithm 1 of the paper.
func (s *Scheduler) Schedule(ctx *cluster.Context) ([]cluster.Decision, error) {
	s.rounds++
	s.lastObjSet = false
	ids := ctx.Env.IDs()
	if len(ids) == 0 || len(ctx.Jobs) == 0 {
		return nil, nil
	}

	if cap(s.capsBuf) < len(ids) {
		s.capsBuf = make([]int, len(ids))
	}
	caps := s.capsBuf[:len(ids)]
	totalCap := 0
	for n, id := range ids {
		caps[n] = ctx.Free[id]
		totalCap += caps[n]
	}

	s.updateHistory(ctx, ids)

	if totalCap == 0 {
		return nil, nil // nothing can start; jobs keep waiting
	}

	// Slack manager (Algorithm 1, lines 5-7): when demand exceeds total
	// capacity, keep only the most urgent Σcap jobs this round; the MILP
	// batch is also capped to bound decision overhead.
	jobs := ctx.Jobs
	overloaded := len(jobs) > totalCap
	limit := totalCap
	if s.cfg.MaxBatch < limit {
		limit = s.cfg.MaxBatch
	}
	if len(jobs) > limit {
		if s.cfg.DisableSlackManager {
			jobs = jobs[:limit] // FIFO truncation (ablation)
		} else {
			jobs = s.mostUrgent(ctx, jobs, limit)
		}
	}

	cands := s.buildCandidates(ctx, ids, jobs)

	if s.cfg.GreedyController {
		return s.greedyAssign(ctx, ids, caps, jobs, cands), nil
	}

	// Hard controller first (Algorithm 1, lines 8-9); soften on demand
	// overload or infeasibility (lines 5-7 and 10-11).
	if !overloaded {
		dec, feasible, err := s.solve(ctx, ids, caps, jobs, cands, false)
		if err != nil {
			return nil, err
		}
		if feasible {
			return dec, nil
		}
	}
	s.softened++
	dec, feasible, err := s.solve(ctx, ids, caps, jobs, cands, true)
	if err != nil {
		return nil, err
	}
	if !feasible {
		// Last resort: greedy keeps the cluster moving even if the solver
		// hit its limits.
		return s.greedyAssign(ctx, ids, caps, jobs, cands), nil
	}
	return dec, nil
}

// buildCandidates scores every (job, region) pair at the current instant,
// using the controller's estimates (EstDuration/EstEnergy) — never the
// ground-truth actuals.
func (s *Scheduler) buildCandidates(ctx *cluster.Context, ids []region.ID, jobs []*cluster.PendingJob) [][]candidate {
	// Pooled: the row headers and the backing entry array persist across
	// rounds; the returned slices are only valid until the next Schedule.
	if cap(s.candRows) < len(jobs) {
		s.candRows = make([][]candidate, len(jobs))
	}
	if need := len(jobs) * len(ids); cap(s.candBuf) < need {
		s.candBuf = make([]candidate, need)
	}
	cands := s.candRows[:len(jobs)]
	for m, pj := range jobs {
		job := pj.Job
		pkg := jobPackageMB(job)
		row := s.candBuf[m*len(ids) : (m+1)*len(ids)]
		for n, id := range ids {
			lat := ctx.Net.Latency(job.Home, id, pkg)
			start := ctx.Now.Add(lat)
			snap, ok := ctx.Env.Snapshot(id, start)
			if !ok {
				row[n] = candidate{carbon: math.Inf(1), water: math.Inf(1), ratio: math.Inf(1)}
				continue
			}
			fp := ctx.FP.ForJob(snap, job.EstEnergy, job.EstDuration)
			carbon := float64(fp.Carbon())
			water := float64(fp.Water())
			if id != job.Home {
				commFP := ctx.FP.ForJob(snap, ctx.Net.Energy(job.Home, id, pkg), 0)
				carbon += float64(commFP.Carbon())
				water += float64(commFP.Water())
			}
			ratio := 0.0
			if job.EstDuration > 0 {
				ratio = float64(lat) / float64(job.EstDuration)
			}
			usd := 0.0
			if r := ctx.Env.Region(id); r != nil {
				usd = r.EnergyPriceUSD * float64(job.EstEnergy) * snap.PUE
			}
			row[n] = candidate{carbon: carbon, water: water, ratio: ratio, cost: usd, latency: lat}
		}
		cands[m] = row
	}
	return cands
}

// objective computes the Eq. 8 cost coefficient of placing job m in region
// index n.
func (s *Scheduler) objective(ids []region.ID, cands [][]candidate, m, n int) float64 {
	row := cands[m]
	maxC, maxW := 0.0, 0.0
	for _, c := range row {
		if !math.IsInf(c.carbon, 1) && c.carbon > maxC {
			maxC = c.carbon
		}
		if !math.IsInf(c.water, 1) && c.water > maxW {
			maxW = c.water
		}
	}
	if maxC == 0 {
		maxC = 1
	}
	if maxW == 0 {
		maxW = 1
	}
	c := row[n]
	cost := s.cfg.LambdaCarbon*c.carbon/maxC + s.cfg.LambdaWater*c.water/maxW
	if !s.cfg.DisableHistory {
		cost += s.cfg.LambdaRef * (s.cfg.LambdaCarbon*s.refCarbon(ids[n]) + s.cfg.LambdaWater*s.refWater(ids[n]))
	}
	// §7 extensions: performance and financial-cost objectives, normalized
	// like the carbon/water terms so no single objective dominates by unit.
	if s.cfg.PerfWeight > 0 {
		maxR := 0.0
		for _, cc := range row {
			if !math.IsInf(cc.ratio, 1) && cc.ratio > maxR {
				maxR = cc.ratio
			}
		}
		if maxR > 0 {
			cost += s.cfg.PerfWeight * c.ratio / maxR
		}
	}
	if s.cfg.CostWeight > 0 {
		maxUSD := 0.0
		for _, cc := range row {
			if cc.cost > maxUSD {
				maxUSD = cc.cost
			}
		}
		if maxUSD > 0 {
			cost += s.cfg.CostWeight * c.cost / maxUSD
		}
	}
	return cost
}

// solve builds and solves the round's MILP (Eq. 8-13).
//
// The delay-tolerance constraint is encoded in its exact pair-wise
// equivalent: because Eq. 9 forces exactly one x_mn to 1 per job, the row
// Σ_n x_mn·L_mn/t_mn <= TOL holds iff the chosen pair's ratio is within the
// job's remaining tolerance. So in hard mode, pairs with ratio > remaining
// tolerance are forbidden (x_mn fixed to 0); in soft mode, the optimal
// penalty variable of Eq. 12-13 evaluates to P_m = max(0, ratio - TOL) for
// the chosen pair, so σ·max(0, ratio - TOL) folds into the pair's objective
// coefficient. Both encodings are mathematically identical to the paper's
// formulation and keep the relaxation a pure assignment polytope, which is
// integral — branch and bound terminates at the root LP, keeping the
// decision overhead of Fig. 13 low. It returns the decisions, whether a
// usable solution was found, and any solver error.
func (s *Scheduler) solve(ctx *cluster.Context, ids []region.ID, caps []int, jobs []*cluster.PendingJob, cands [][]candidate, soft bool) ([]cluster.Decision, bool, error) {
	M, N := len(jobs), len(ids)
	rm, err := s.model(M, N)
	if err != nil {
		return nil, false, err
	}
	prob, obj := rm.prob, rm.obj
	// Clear the previous round's pair-forbidding fixes before installing
	// this round's.
	if err := prob.ResetVarBounds(0, math.Inf(1)); err != nil {
		return nil, false, err
	}
	for m := 0; m < M; m++ {
		// Remaining tolerance: the budget shrinks by the time the job has
		// already spent waiting in the queue.
		rhs := ctx.Tolerance
		if est := float64(jobs[m].Job.EstDuration); est > 0 {
			rhs -= float64(ctx.Now.Sub(jobs[m].Job.Submit)) / est
		}
		if rhs < 0 {
			rhs = 0
		}
		for n := 0; n < N; n++ {
			v := m*N + n
			cost := s.objective(ids, cands, m, n)
			ratio := cands[m][n].ratio
			switch {
			case math.IsInf(cost, 1) || math.IsInf(ratio, 1):
				// Unusable pair: forbid by fixing the binary to zero.
				cost = 0
				if err := prob.SetBounds(v, 0, 0); err != nil {
					return nil, false, err
				}
			case ratio > rhs && !soft:
				// Eq. 11 violated for this pair: forbidden in hard mode.
				cost = 0
				if err := prob.SetBounds(v, 0, 0); err != nil {
					return nil, false, err
				}
			case ratio > rhs && soft:
				// Eq. 12-13: violation priced at σ per unit of excess.
				cost += s.cfg.PenaltySigma * (ratio - rhs)
			}
			obj[v] = cost
		}
	}
	if err := prob.SetObjective(obj, lp.Minimize); err != nil {
		return nil, false, err
	}
	// Eq. 10 RHS: this round's regional capacities.
	for n := 0; n < N; n++ {
		if err := prob.SetRHS(rm.capRows[n], float64(caps[n])); err != nil {
			return nil, false, err
		}
	}

	opts := s.cfg.Solver
	if opts.Workers <= 0 {
		// Auto worker default: serial below 200-job batches, then
		// min(GOMAXPROCS, batch/64) — thousand-job rounds spread the
		// branch-and-bound tree across cores without the caller opting in.
		opts.Workers = milp.AutoWorkers(M)
	}
	sol, err := prob.Solve(opts)
	if err != nil {
		return nil, false, err
	}
	s.solverStats.Add(sol.Stats)
	if sol.Status != milp.Optimal && sol.Status != milp.Feasible {
		return nil, false, nil
	}
	s.lastObj, s.lastObjSet = sol.Objective, true
	dec := make([]cluster.Decision, 0, M)
	for m := 0; m < M; m++ {
		for n := 0; n < N; n++ {
			if sol.X[m*N+n] > 0.5 {
				dec = append(dec, cluster.Decision{Job: jobs[m].Job, Region: ids[n]})
				break
			}
		}
	}
	return dec, true, nil
}

// greedyAssign is the ablation controller (and last-resort fallback): each
// job takes its cheapest feasible region, respecting capacity counts.
func (s *Scheduler) greedyAssign(ctx *cluster.Context, ids []region.ID, caps []int, jobs []*cluster.PendingJob, cands [][]candidate) []cluster.Decision {
	if cap(s.leftBuf) < len(caps) {
		s.leftBuf = make([]int, len(caps))
	}
	left := s.leftBuf[:len(caps)]
	copy(left, caps)
	out := make([]cluster.Decision, 0, len(jobs))
	for m, pj := range jobs {
		best, bestCost := -1, math.Inf(1)
		for n := range ids {
			if left[n] <= 0 {
				continue
			}
			if cands[m][n].ratio > ctx.Tolerance {
				continue
			}
			if c := s.objective(ids, cands, m, n); c < bestCost {
				bestCost = c
				best = n
			}
		}
		if best == -1 {
			// Tolerance excludes everything with capacity: softened greedy
			// falls back to the cheapest region with space.
			for n := range ids {
				if left[n] <= 0 {
					continue
				}
				c := s.objective(ids, cands, m, n) + s.cfg.PenaltySigma*math.Max(0, cands[m][n].ratio-ctx.Tolerance)
				if c < bestCost {
					bestCost = c
					best = n
				}
			}
		}
		if best == -1 {
			continue // no capacity anywhere; job waits
		}
		left[best]--
		out = append(out, cluster.Decision{Job: pj.Job, Region: ids[best]})
	}
	return out
}

// mostUrgent returns the limit jobs with the least remaining slack, per the
// urgency score of Eq. 14:
//
//	Urgency_m = TOL%·t_m − L̄_m − (T_now − T_start_m)
//
// i.e. allowed extra service time, minus typical migration cost, minus time
// already spent waiting. Ascending order = most urgent first.
func (s *Scheduler) mostUrgent(ctx *cluster.Context, jobs []*cluster.PendingJob, limit int) []*cluster.PendingJob {
	ids := ctx.Env.IDs()
	if cap(s.urgBuf) < len(jobs) {
		s.urgBuf = make([]urgentJob, len(jobs))
	}
	scoredJobs := s.urgBuf[:len(jobs)]
	for i, pj := range jobs {
		job := pj.Job
		avgLat := ctx.Net.AvgLatency(job.Home, ids, jobPackageMB(job))
		waited := ctx.Now.Sub(pj.FirstSeen)
		u := ctx.Tolerance*float64(job.EstDuration) - float64(avgLat) - float64(waited)
		scoredJobs[i] = urgentJob{pj: pj, u: u}
	}
	sort.SliceStable(scoredJobs, func(i, j int) bool { return scoredJobs[i].u < scoredJobs[j].u })
	out := make([]*cluster.PendingJob, 0, limit)
	for i := 0; i < limit && i < len(scoredJobs); i++ {
		out = append(out, scoredJobs[i].pj)
	}
	// Drop the pooled buffer's job pointers: a long-running server must not
	// pin a past burst's jobs via scratch sized to the largest round seen.
	clear(scoredJobs)
	return out
}

// updateHistory records this round's normalized per-region carbon and water
// intensities into the history learner window.
func (s *Scheduler) updateHistory(ctx *cluster.Context, ids []region.ID) {
	if s.cfg.DisableHistory {
		return
	}
	carbons := make([]float64, len(ids))
	waters := make([]float64, len(ids))
	maxC, maxW := 0.0, 0.0
	for i, id := range ids {
		snap, ok := ctx.Env.Snapshot(id, ctx.Now)
		if !ok {
			continue
		}
		carbons[i] = float64(snap.CI)
		waters[i] = float64(snap.WaterIntensity())
		if carbons[i] > maxC {
			maxC = carbons[i]
		}
		if waters[i] > maxW {
			maxW = waters[i]
		}
	}
	for i, id := range ids {
		c, w := 0.0, 0.0
		if maxC > 0 {
			c = carbons[i] / maxC
		}
		if maxW > 0 {
			w = waters[i] / maxW
		}
		s.histCarbon[id] = pushWindow(s.histCarbon[id], c, s.cfg.HistoryWindow)
		s.histWater[id] = pushWindow(s.histWater[id], w, s.cfg.HistoryWindow)
	}
}

// refCarbon is CO2ref_n: the windowed mean normalized carbon intensity.
func (s *Scheduler) refCarbon(id region.ID) float64 { return meanOf(s.histCarbon[id]) }

// refWater is H2Oref_n: the windowed mean normalized water intensity.
func (s *Scheduler) refWater(id region.ID) float64 { return meanOf(s.histWater[id]) }

func pushWindow(w []float64, v float64, size int) []float64 {
	w = append(w, v)
	if len(w) > size {
		w = w[len(w)-size:]
	}
	return w
}

func meanOf(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	s := 0.0
	for _, x := range xs {
		s += x
	}
	return s / float64(len(xs))
}

func jobPackageMB(j *trace.Job) float64 {
	if p, err := workload.Lookup(j.Benchmark); err == nil {
		return p.PackageMB
	}
	return 500
}

// Interface compliance check.
var _ cluster.Scheduler = (*Scheduler)(nil)
