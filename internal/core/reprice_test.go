package core

import (
	"math"
	"testing"
	"time"

	"waterwise/internal/cluster"
	"waterwise/internal/trace"
)

// mirrorSched feeds every scheduling round to two WaterWise controllers —
// one with the cross-round re-pricing warm start, one solving cold — and
// compares their round MILP objectives. The cold controller's decisions are
// the ones applied, so both controllers see an identical round sequence and
// any objective divergence is the warm start's fault.
type mirrorSched struct {
	t          *testing.T
	warm, cold *Scheduler
	compared   int
}

func (m *mirrorSched) Name() string { return "mirror" }

func (m *mirrorSched) Schedule(ctx *cluster.Context) ([]cluster.Decision, error) {
	warmDec, err := m.warm.Schedule(ctx)
	if err != nil {
		return nil, err
	}
	coldDec, err := m.cold.Schedule(ctx)
	if err != nil {
		return nil, err
	}
	warmObj, warmOK := m.warm.LastRoundObjective()
	coldObj, coldOK := m.cold.LastRoundObjective()
	if warmOK != coldOK {
		m.t.Errorf("round %v: warm solved=%v, cold solved=%v", ctx.Now, warmOK, coldOK)
	}
	if warmOK && coldOK {
		m.compared++
		if math.Abs(warmObj-coldObj) > 1e-6 {
			m.t.Errorf("round %v: warm objective %.9f, cold objective %.9f", ctx.Now, warmObj, coldObj)
		}
	}
	if len(warmDec) != len(coldDec) {
		m.t.Errorf("round %v: warm decided %d jobs, cold %d", ctx.Now, len(warmDec), len(coldDec))
	}
	return coldDec, nil
}

// TestCrossRoundWarmStartDifferential is the acceptance differential for the
// cross-round warm start: on identical round sequences the repricing
// controller must (a) match the cold controller's MILP objective on every
// round and (b) spend fewer total simplex iterations, with a substantial
// fraction of rounds served from the revived basis.
func TestCrossRoundWarmStartDifferential(t *testing.T) {
	env := testEnv(t)
	jobs, err := trace.GenerateBorgLike(trace.Config{
		Start: testStart, Duration: 24 * time.Hour, JobsPerDay: 9000,
		Regions: env.IDs(), DurationScale: 0.5, Seed: 7,
	})
	if err != nil {
		t.Fatal(err)
	}

	warmCfg := DefaultConfig()
	warmCfg.Solver.RepriceWarmStart = true
	warm, err := New(warmCfg)
	if err != nil {
		t.Fatal(err)
	}
	cold, err := New(DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	m := &mirrorSched{t: t, warm: warm, cold: cold}
	if _, err := cluster.Run(cluster.Config{Env: env, Tolerance: 0.5, Tick: 30 * time.Second}, m, jobs); err != nil {
		t.Fatal(err)
	}
	if m.compared == 0 {
		t.Fatal("no round was compared")
	}

	ws, cs := warm.SolverStats(), cold.SolverStats()
	if ws.WarmStarts < m.compared/2 {
		t.Errorf("only %d of %d rounds were served warm", ws.WarmStarts, m.compared)
	}
	if ws.SimplexIters >= cs.SimplexIters {
		t.Errorf("warm controller spent %d simplex iters, cold %d — repricing reduced nothing",
			ws.SimplexIters, cs.SimplexIters)
	}
	t.Logf("rounds=%d warm-served=%d iters warm=%d cold=%d (%.1f%% fewer)",
		m.compared, ws.WarmStarts, ws.SimplexIters, cs.SimplexIters,
		100*(1-float64(ws.SimplexIters)/float64(cs.SimplexIters)))
}
