package core

import (
	"math"
	"testing"
	"time"

	"waterwise/internal/cluster"
	"waterwise/internal/energy"
	"waterwise/internal/footprint"
	"waterwise/internal/region"
	"waterwise/internal/trace"
	"waterwise/internal/transfer"
)

var testStart = time.Date(2023, 7, 1, 0, 0, 0, 0, time.UTC)

func testEnv(t *testing.T) *region.Environment {
	t.Helper()
	env, err := region.NewEnvironment(region.Defaults(), energy.Table, testStart, 24*5, 21)
	if err != nil {
		t.Fatal(err)
	}
	return env
}

func makeJobs(n int, home region.ID) []*trace.Job {
	jobs := make([]*trace.Job, n)
	for i := range jobs {
		jobs[i] = &trace.Job{
			ID: i, Submit: testStart, Benchmark: "canneal", Home: home,
			Duration: 14 * time.Minute, Energy: 0.07,
			EstDuration: 14 * time.Minute, EstEnergy: 0.07,
		}
	}
	return jobs
}

func testCtx(t *testing.T, env *region.Environment, jobs []*trace.Job, tol float64, free map[region.ID]int) *cluster.Context {
	t.Helper()
	if free == nil {
		free = map[region.ID]int{}
		for _, r := range env.Regions {
			free[r.ID] = r.Servers
		}
	}
	pending := make([]*cluster.PendingJob, len(jobs))
	for i, j := range jobs {
		pending[i] = &cluster.PendingJob{Job: j, FirstSeen: testStart}
	}
	return &cluster.Context{
		Now: testStart, Jobs: pending, Free: free, Busy: map[region.ID]int{},
		Env: env, Net: transfer.New(), FP: footprint.NewModel(footprint.NoPerturbation),
		Tolerance: tol,
		FreeAt: func(id region.ID, start time.Time, exec time.Duration) int {
			return free[id]
		},
	}
}

func TestConfigValidation(t *testing.T) {
	if _, err := New(Config{LambdaCarbon: 0.7, LambdaWater: 0.7}); err == nil {
		t.Error("weights summing to 1.4 accepted")
	}
	if _, err := New(Config{LambdaCarbon: -0.5, LambdaWater: 1.5}); err == nil {
		t.Error("negative weight accepted")
	}
	s, err := New(Config{})
	if err != nil {
		t.Fatalf("zero config should default: %v", err)
	}
	if s.cfg.LambdaCarbon != 0.5 || s.cfg.LambdaWater != 0.5 {
		t.Errorf("default lambdas = %g/%g, want 0.5/0.5", s.cfg.LambdaCarbon, s.cfg.LambdaWater)
	}
	if s.cfg.HistoryWindow != 10 || s.cfg.LambdaRef != 0.1 {
		t.Errorf("default history params = window %d λref %g, want 10/0.1 (paper defaults)",
			s.cfg.HistoryWindow, s.cfg.LambdaRef)
	}
}

func TestScheduleAssignsEachJobOnce(t *testing.T) {
	env := testEnv(t)
	s, err := New(DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	jobs := makeJobs(20, region.Mumbai)
	dec, err := s.Schedule(testCtx(t, env, jobs, 0.5, nil))
	if err != nil {
		t.Fatal(err)
	}
	if len(dec) != 20 {
		t.Fatalf("decisions = %d, want 20", len(dec))
	}
	seen := map[int]bool{}
	for _, d := range dec {
		if seen[d.Job.ID] {
			t.Fatalf("job %d decided twice (violates Eq. 9)", d.Job.ID)
		}
		seen[d.Job.ID] = true
	}
}

func TestScheduleRespectsCapacity(t *testing.T) {
	env := testEnv(t)
	s, err := New(DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	jobs := makeJobs(12, region.Mumbai)
	free := map[region.ID]int{
		region.Zurich: 2, region.Madrid: 2, region.Oregon: 2,
		region.Milan: 2, region.Mumbai: 2,
	}
	dec, err := s.Schedule(testCtx(t, env, jobs, 0.5, free))
	if err != nil {
		t.Fatal(err)
	}
	if len(dec) > 10 {
		t.Fatalf("decided %d jobs with total capacity 10 (violates Eq. 10)", len(dec))
	}
	counts := map[region.ID]int{}
	for _, d := range dec {
		counts[d.Region]++
	}
	for id, c := range counts {
		if c > free[id] {
			t.Errorf("region %s got %d jobs, capacity %d (violates Eq. 10)", id, c, free[id])
		}
	}
}

func TestSchedulePrefersLowCarbonAndWater(t *testing.T) {
	env := testEnv(t)
	s, err := New(DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	jobs := makeJobs(30, region.Mumbai)
	dec, err := s.Schedule(testCtx(t, env, jobs, 1.0, nil))
	if err != nil {
		t.Fatal(err)
	}
	toMumbai := 0
	for _, d := range dec {
		if d.Region == region.Mumbai {
			toMumbai++
		}
	}
	// Mumbai is carbon-worst AND water-bad; with generous tolerance almost
	// everything should leave.
	if toMumbai > len(dec)/4 {
		t.Errorf("%d/%d jobs stayed in carbon-worst Mumbai", toMumbai, len(dec))
	}
}

func TestZeroCapacityDefersAll(t *testing.T) {
	env := testEnv(t)
	s, err := New(DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	jobs := makeJobs(5, region.Milan)
	free := map[region.ID]int{}
	for _, r := range env.Regions {
		free[r.ID] = 0
	}
	dec, err := s.Schedule(testCtx(t, env, jobs, 0.5, free))
	if err != nil {
		t.Fatal(err)
	}
	if len(dec) != 0 {
		t.Errorf("decided %d jobs with zero capacity", len(dec))
	}
}

func TestTightToleranceKeepsJobsNearHome(t *testing.T) {
	env := testEnv(t)
	s, err := New(DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	// Tolerance so tight that any migration latency would violate Eq. 11:
	// a 14-min job at 0.1% tolerance allows < 1s of transfer.
	jobs := makeJobs(10, region.Mumbai)
	dec, err := s.Schedule(testCtx(t, env, jobs, 0.001, nil))
	if err != nil {
		t.Fatal(err)
	}
	for _, d := range dec {
		if d.Region != region.Mumbai {
			t.Errorf("job %d migrated to %s despite 0.1%% tolerance", d.Job.ID, d.Region)
		}
	}
}

func TestUrgencyOrdering(t *testing.T) {
	env := testEnv(t)
	s, err := New(DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	// Three jobs: one long-waiting (urgent), one fresh with a long est
	// duration (relaxed), one fresh short.
	long := &trace.Job{ID: 0, Submit: testStart.Add(-30 * time.Minute), Benchmark: "canneal",
		Home: region.Milan, Duration: 10 * time.Minute, Energy: 0.05,
		EstDuration: 10 * time.Minute, EstEnergy: 0.05}
	relaxed := &trace.Job{ID: 1, Submit: testStart, Benchmark: "canneal",
		Home: region.Milan, Duration: time.Hour, Energy: 0.3,
		EstDuration: time.Hour, EstEnergy: 0.3}
	short := &trace.Job{ID: 2, Submit: testStart, Benchmark: "canneal",
		Home: region.Milan, Duration: 10 * time.Minute, Energy: 0.05,
		EstDuration: 10 * time.Minute, EstEnergy: 0.05}
	pending := []*cluster.PendingJob{
		{Job: long, FirstSeen: testStart.Add(-30 * time.Minute)},
		{Job: relaxed, FirstSeen: testStart},
		{Job: short, FirstSeen: testStart},
	}
	ctx := testCtx(t, env, nil, 0.5, nil)
	ctx.Jobs = pending
	picked := s.mostUrgent(ctx, pending, 2)
	if len(picked) != 2 {
		t.Fatalf("picked %d, want 2", len(picked))
	}
	if picked[0].Job.ID != 0 {
		t.Errorf("most urgent should be the long-waiting job, got %d", picked[0].Job.ID)
	}
	if picked[0].Job.ID == 1 || picked[1].Job.ID == 1 {
		t.Errorf("the relaxed long job should be dropped, picked %d and %d", picked[0].Job.ID, picked[1].Job.ID)
	}
}

func TestOverloadUsesSlackManagerAndSoftens(t *testing.T) {
	env := testEnv(t)
	s, err := New(DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	jobs := makeJobs(40, region.Madrid)
	free := map[region.ID]int{
		region.Zurich: 3, region.Madrid: 3, region.Oregon: 3,
		region.Milan: 3, region.Mumbai: 3,
	}
	dec, err := s.Schedule(testCtx(t, env, jobs, 0.5, free))
	if err != nil {
		t.Fatal(err)
	}
	if len(dec) == 0 || len(dec) > 15 {
		t.Fatalf("decided %d jobs, want 1..15 under overload", len(dec))
	}
	_, softened := s.Stats()
	if softened == 0 {
		t.Error("overload round should engage the softened controller (Algorithm 1 line 7)")
	}
}

func TestHistoryLearnerUpdates(t *testing.T) {
	env := testEnv(t)
	cfg := DefaultConfig()
	cfg.HistoryWindow = 3
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	jobs := makeJobs(2, region.Milan)
	for round := 0; round < 5; round++ {
		ctx := testCtx(t, env, jobs, 0.5, nil)
		ctx.Now = testStart.Add(time.Duration(round) * time.Hour)
		if _, err := s.Schedule(ctx); err != nil {
			t.Fatal(err)
		}
	}
	for _, id := range env.IDs() {
		if n := len(s.histCarbon[id]); n != 3 {
			t.Errorf("history window for %s holds %d entries, want 3", id, n)
		}
		ref := s.refCarbon(id)
		if ref < 0 || ref > 1 {
			t.Errorf("normalized carbon ref for %s = %g outside [0,1]", id, ref)
		}
	}
	// The carbon-worst region must carry the highest reference.
	if s.refCarbon(region.Mumbai) < s.refCarbon(region.Zurich) {
		t.Error("history learner should rank Mumbai's carbon above Zurich's")
	}
}

func TestGreedyControllerMatchesMILPWhenSlack(t *testing.T) {
	env := testEnv(t)
	milpCfg := DefaultConfig()
	greedyCfg := DefaultConfig()
	greedyCfg.GreedyController = true
	milpS, err := New(milpCfg)
	if err != nil {
		t.Fatal(err)
	}
	greedyS, err := New(greedyCfg)
	if err != nil {
		t.Fatal(err)
	}
	jobs := makeJobs(10, region.Oregon)
	decM, err := milpS.Schedule(testCtx(t, env, jobs, 0.5, nil))
	if err != nil {
		t.Fatal(err)
	}
	decG, err := greedyS.Schedule(testCtx(t, env, jobs, 0.5, nil))
	if err != nil {
		t.Fatal(err)
	}
	if len(decM) != len(decG) {
		t.Fatalf("decision counts differ: %d vs %d", len(decM), len(decG))
	}
	// With identical jobs and uncontended capacity, the MILP optimum is
	// separable and must equal the greedy argmin.
	byID := map[int]region.ID{}
	for _, d := range decM {
		byID[d.Job.ID] = d.Region
	}
	for _, d := range decG {
		if byID[d.Job.ID] != d.Region {
			t.Errorf("job %d: MILP chose %s, greedy chose %s (should coincide when capacity is slack)",
				d.Job.ID, byID[d.Job.ID], d.Region)
		}
	}
}

func TestEndToEndSavingsPositive(t *testing.T) {
	if testing.Short() {
		t.Skip("integration test")
	}
	env, err := region.NewEnvironment(region.Defaults(), energy.Table, testStart, 24*4, 77)
	if err != nil {
		t.Fatal(err)
	}
	jobs, err := trace.GenerateBorgLike(trace.Config{
		Start: testStart, Duration: 12 * time.Hour, JobsPerDay: 6000,
		Regions: env.IDs(), Seed: 5,
	})
	if err != nil {
		t.Fatal(err)
	}
	base, err := cluster.Run(cluster.Config{Env: env, Tolerance: 0.5}, baselineSched{}, jobs)
	if err != nil {
		t.Fatal(err)
	}
	ww, err := New(DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	res, err := cluster.Run(cluster.Config{Env: env, Tolerance: 0.5}, ww, jobs)
	if err != nil {
		t.Fatal(err)
	}
	carbonSaving := 1 - float64(res.TotalCarbon())/float64(base.TotalCarbon())
	waterSaving := 1 - float64(res.TotalWater())/float64(base.TotalWater())
	if carbonSaving <= 0.05 {
		t.Errorf("carbon saving = %.1f%%, want clearly positive", 100*carbonSaving)
	}
	if waterSaving <= 0 {
		t.Errorf("water saving = %.1f%%, want positive", 100*waterSaving)
	}
	if res.ViolationRate() > 0.05 {
		t.Errorf("violation rate = %.2f%%, want < 5%%", 100*res.ViolationRate())
	}
	if math.Abs(res.MeanNormalizedService()-1) > 0.5 {
		t.Errorf("mean normalized service = %.2f, implausible", res.MeanNormalizedService())
	}
}

// baselineSched avoids importing internal/sched (cycle-free test baseline).
type baselineSched struct{}

func (baselineSched) Name() string { return "baseline" }
func (baselineSched) Schedule(ctx *cluster.Context) ([]cluster.Decision, error) {
	out := make([]cluster.Decision, 0, len(ctx.Jobs))
	for _, pj := range ctx.Jobs {
		out = append(out, cluster.Decision{Job: pj.Job, Region: pj.Job.Home})
	}
	return out, nil
}

func TestPerfWeightExtensionKeepsJobsHome(t *testing.T) {
	env := testEnv(t)
	cfg := DefaultConfig()
	cfg.PerfWeight = 10 // performance dominates: any migration latency loses
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	jobs := makeJobs(15, region.Mumbai)
	dec, err := s.Schedule(testCtx(t, env, jobs, 1.0, nil))
	if err != nil {
		t.Fatal(err)
	}
	for _, d := range dec {
		if d.Region != region.Mumbai {
			t.Errorf("job %d migrated to %s despite dominant perf weight", d.Job.ID, d.Region)
		}
	}
}

func TestCostWeightExtensionPrefersCheapRegion(t *testing.T) {
	env := testEnv(t)
	cfg := DefaultConfig()
	cfg.CostWeight = 10 // cost dominates: Oregon has the lowest price
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	jobs := makeJobs(15, region.Milan)
	dec, err := s.Schedule(testCtx(t, env, jobs, 1.0, nil))
	if err != nil {
		t.Fatal(err)
	}
	toOregon := 0
	for _, d := range dec {
		if d.Region == region.Oregon {
			toOregon++
		}
	}
	if toOregon < len(dec)*3/4 {
		t.Errorf("only %d/%d jobs went to cheapest Oregon under dominant cost weight", toOregon, len(dec))
	}
}
