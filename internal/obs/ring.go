package obs

import (
	"sort"
	"sync"
	"time"
)

// Stage identifies one phase of a scheduling round in a RoundTrace's
// breakdown. The stages partition the round's wall time: batch assembly
// (popping due arrivals into the simulator), the solve (scheduler
// invocation plus decision commit), the WAL append and fsync of the
// round record, any snapshot the round triggered, and publishing the
// decisions into the log ring.
type Stage int

// The round stages, in execution order.
const (
	StageIngest Stage = iota // batch assembly: due arrivals into the simulator
	StageSolve               // scheduler invocation + decision commit (Fig. 13's overhead)
	StageWALAppend
	StageWALFsync
	StageSnapshot
	StagePublish // decision-ring append + lifecycle trace stamping
	NumStages
)

// String names the stage for labels and JSON.
func (st Stage) String() string {
	switch st {
	case StageIngest:
		return "ingest"
	case StageSolve:
		return "solve"
	case StageWALAppend:
		return "wal_append"
	case StageWALFsync:
		return "wal_fsync"
	case StageSnapshot:
		return "snapshot"
	case StagePublish:
		return "publish"
	default:
		return "unknown"
	}
}

// RoundTrace is the record of one scheduling round: when it ran, how
// long each stage took, and what the solver did — enough to answer
// "which stage made this round slow" after the fact.
type RoundTrace struct {
	// Index is the round index k (rounds fire at Env.Start + k*Round).
	Index int64 `json:"index"`
	// Sim is the round's simulated instant; Wall is when it ran.
	Sim  time.Time `json:"sim"`
	Wall time.Time `json:"wall"`
	// Total is the round's wall duration (the sum of the stages plus
	// loop overhead).
	Total time.Duration `json:"total_ns"`
	// Stages holds the per-stage wall durations, indexed by Stage.
	Stages [NumStages]time.Duration `json:"stages_ns"`
	// Batch and Decided count the jobs offered to and placed by the
	// round's solve.
	Batch   int `json:"batch"`
	Decided int `json:"decided"`
	// Nodes and SimplexIters are the round's branch-and-bound node and
	// simplex pivot deltas; WarmStarts/ColdStarts its LP solve mix.
	// All zero when the scheduler exposes no solver stats.
	Nodes        int `json:"nodes"`
	SimplexIters int `json:"simplex_iters"`
	WarmStarts   int `json:"warm_starts"`
	ColdStarts   int `json:"cold_starts"`
}

// StageBreakdown returns the stage durations keyed by stage name —
// the JSON form the /v1/rounds/slowest endpoint serves.
func (rt *RoundTrace) StageBreakdown() map[string]time.Duration {
	out := make(map[string]time.Duration, NumStages)
	for st := Stage(0); st < NumStages; st++ {
		out[st.String()] = rt.Stages[st]
	}
	return out
}

// RoundRing retains the most recent rounds' traces in a bounded ring
// plus the slowest-N rounds ever seen (by Total) as exemplars, so a tail
// round remains inspectable after thousands of fast rounds have cycled
// the ring. One Record per round, so a plain mutex is cheap here; the
// hot per-observation path is Histogram, not the ring.
type RoundRing struct {
	mu      sync.Mutex
	recent  []RoundTrace
	head    int
	cap     int
	slowest []RoundTrace // sorted fastest-first, so [0] is the eviction edge
	slowCap int
}

// NewRoundRing builds a ring retaining the last size rounds and the
// slowN slowest exemplars (size and slowN default to 1024 and 32 when
// non-positive).
func NewRoundRing(size, slowN int) *RoundRing {
	if size <= 0 {
		size = 1024
	}
	if slowN <= 0 {
		slowN = 32
	}
	return &RoundRing{cap: size, slowCap: slowN}
}

// Record stores one round's trace.
func (r *RoundRing) Record(rt RoundTrace) {
	if r == nil {
		return
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if len(r.recent) < r.cap {
		r.recent = append(r.recent, rt)
	} else {
		r.recent[r.head] = rt
		r.head = (r.head + 1) % r.cap
	}
	if len(r.slowest) < r.slowCap {
		r.slowest = append(r.slowest, rt)
		sort.Slice(r.slowest, func(i, j int) bool { return r.slowest[i].Total < r.slowest[j].Total })
		return
	}
	if rt.Total <= r.slowest[0].Total {
		return
	}
	// Displace the fastest exemplar and re-insert in order (slowCap is
	// small, so the shift is a handful of moves).
	i := sort.Search(len(r.slowest), func(i int) bool { return r.slowest[i].Total > rt.Total })
	copy(r.slowest, r.slowest[1:i])
	r.slowest[i-1] = rt
}

// Recent returns up to n of the latest rounds, newest first (n <= 0
// means all retained).
func (r *RoundRing) Recent(n int) []RoundTrace {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	total := len(r.recent)
	if n <= 0 || n > total {
		n = total
	}
	out := make([]RoundTrace, n)
	for i := 0; i < n; i++ {
		// Newest entry sits just before head once wrapped.
		out[i] = r.recent[((r.head-1-i)+2*total)%total]
	}
	return out
}

// Slowest returns the slowest-N exemplars, slowest first.
func (r *RoundRing) Slowest() []RoundTrace {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]RoundTrace, len(r.slowest))
	for i := range out {
		out[i] = r.slowest[len(r.slowest)-1-i]
	}
	return out
}
