// Package obs is the serving stack's dependency-free observability core:
// lock-cheap streaming latency histograms that merge across shards and
// render as proper Prometheus histogram families, a bounded per-round
// trace ring that attributes every scheduling round's wall time to its
// stages (batch assembly, solve, WAL append, fsync, snapshot, decision
// publish) and retains the slowest rounds as exemplars, and sampled
// per-job lifecycle traces (accepted → batched → decided).
//
// Everything here is measurement only: nothing in this package feeds
// back into scheduling, so instrumenting a server cannot perturb its
// decisions — the replay- and crash-equivalence proofs hold with
// observability on or off.
//
// The package also carries the other side of the contract: a strict
// Prometheus text-format parser (ParseProm/LintProm) that the metrics
// tests, the CI metrics-lint job, and loadgen's server-side percentile
// scrape all share.
package obs

import (
	"math"
	"sync/atomic"
)

// Bucket scheme: log-spaced boundaries with bucketsPerOctave buckets per
// factor of two, spanning histMin seconds (~1µs) to histMin·2^octaves
// (~4194s). The relative width of one bucket is 2^(1/4)-1 ≈ 19%, so any
// quantile read off the histogram is within ~9.5% of the true value —
// the "bucket error" the merge property tests assert against. The scheme
// is a package-level constant so every histogram is mergeable with every
// other by plain counter addition.
const (
	bucketsPerOctave = 4
	octaves          = 32
	numBuckets       = bucketsPerOctave * octaves
	histMinExp       = -20 // 2^-20 s ≈ 0.95µs, the smallest resolved value
)

// boundaries[i] is the inclusive upper edge of bucket i, in seconds.
var boundaries = func() [numBuckets]float64 {
	var b [numBuckets]float64
	for i := range b {
		b[i] = math.Exp2(float64(histMinExp) + float64(i+1)/bucketsPerOctave)
	}
	return b
}()

// NumBuckets reports the number of finite buckets in the shared scheme.
func NumBuckets() int { return numBuckets }

// BucketBound reports the inclusive upper edge of bucket i, in seconds.
func BucketBound(i int) float64 { return boundaries[i] }

// bucketIndex maps a value in seconds to its bucket: the smallest i with
// v <= boundaries[i], or numBuckets for values past the last edge (they
// count toward +Inf only). Non-positive values land in bucket 0.
func bucketIndex(v float64) int {
	if v <= 0 {
		return 0
	}
	// log2(v) = exp + log2(frac) with frac in [0.5, 1): cheaper and more
	// stable than math.Log2 alone at the bucket edges is not needed —
	// a single Log2 with a floor is exact enough because edges are exact
	// powers of 2^(1/4) and observations are arbitrary floats.
	idx := int(math.Ceil((math.Log2(v) - histMinExp) * bucketsPerOctave))
	if idx < 1 {
		return 0
	}
	// Ceil puts an exact edge value in the bucket it bounds; floating
	// error can land an edge one off, which is inside the scheme's
	// stated bucket error either way.
	idx--
	if idx > numBuckets {
		return numBuckets
	}
	return idx
}

// Histogram is a lock-free streaming histogram over the package bucket
// scheme. Record is safe for concurrent use (atomic counter adds plus a
// CAS loop for the sum); readers take a Snapshot, which is monotonic but
// not a point-in-time cut — fine for monitoring counters.
//
// The zero value is ready to use. A nil *Histogram ignores Record and
// snapshots empty, so call sites need no "is observability on" branches.
type Histogram struct {
	counts [numBuckets]atomic.Uint64
	over   atomic.Uint64 // observations past the last finite edge
	count  atomic.Uint64
	sum    atomic.Uint64 // float64 bits, CAS-added
}

// Record adds one observation in seconds.
func (h *Histogram) Record(v float64) {
	if h == nil {
		return
	}
	if i := bucketIndex(v); i < numBuckets {
		h.counts[i].Add(1)
	} else {
		h.over.Add(1)
	}
	h.count.Add(1)
	for {
		old := h.sum.Load()
		next := math.Float64bits(math.Float64frombits(old) + v)
		if h.sum.CompareAndSwap(old, next) {
			return
		}
	}
}

// Snapshot copies the histogram's counters for merging, quantile reads,
// and rendering.
func (h *Histogram) Snapshot() Snapshot {
	var s Snapshot
	if h == nil {
		return s
	}
	for i := range h.counts {
		s.Counts[i] = h.counts[i].Load()
	}
	s.Over = h.over.Load()
	s.Count = h.count.Load()
	s.Sum = math.Float64frombits(h.sum.Load())
	return s
}

// Snapshot is an immutable copy of a Histogram's counters. Snapshots
// from any histograms merge by addition because the bucket scheme is
// shared package-wide.
type Snapshot struct {
	// Counts[i] is the number of observations in bucket i.
	Counts [numBuckets]uint64
	// Over counts observations past the last finite bucket edge.
	Over uint64
	// Count is the total number of observations.
	Count uint64
	// Sum is the sum of all observed values, in seconds.
	Sum float64
}

// Merge adds other's counters into s — the shard → gateway aggregation
// step. Quantiles of the merged snapshot equal quantiles of the combined
// observation stream within the bucket error.
func (s *Snapshot) Merge(other Snapshot) {
	for i := range s.Counts {
		s.Counts[i] += other.Counts[i]
	}
	s.Over += other.Over
	s.Count += other.Count
	s.Sum += other.Sum
}

// Quantile estimates the q-quantile (q in [0,1]) in seconds, linearly
// interpolating within the holding bucket. Returns 0 on an empty
// snapshot; q past the last finite edge reports that edge.
func (s *Snapshot) Quantile(q float64) float64 {
	if s.Count == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	rank := q * float64(s.Count)
	var cum uint64
	for i, c := range s.Counts {
		if c == 0 {
			continue
		}
		if float64(cum+c) >= rank {
			lo := 0.0
			if i > 0 {
				lo = boundaries[i-1]
			}
			hi := boundaries[i]
			frac := (rank - float64(cum)) / float64(c)
			if frac < 0 {
				frac = 0
			}
			return lo + (hi-lo)*frac
		}
		cum += c
	}
	return boundaries[numBuckets-1]
}

// Mean reports the arithmetic mean in seconds (0 when empty).
func (s *Snapshot) Mean() float64 {
	if s.Count == 0 {
		return 0
	}
	return s.Sum / float64(s.Count)
}
