package obs

import (
	"fmt"
	"math"
	"sort"
	"strconv"
	"strings"
)

// PromSample is one parsed series sample: the full metric name (for a
// histogram family that includes the _bucket/_sum/_count suffix), its
// labels, and the value.
type PromSample struct {
	Name   string
	Labels map[string]string
	Value  float64
}

// PromFamily is one declared metric family: its HELP text, TYPE, and
// every sample attributed to it.
type PromFamily struct {
	Name    string
	Help    string
	Type    string
	Samples []PromSample
}

// ParseProm parses a Prometheus text-format exposition strictly: every
// sample must belong to a family declared with both # HELP and # TYPE
// before its first sample, names and labels must be well-formed, values
// must parse, and no series may repeat. It returns the families keyed by
// name. This is the parser behind LintProm, the CI metrics-lint job, and
// loadgen's server-side percentile scrape.
func ParseProm(data []byte) (map[string]*PromFamily, error) {
	families := make(map[string]*PromFamily)
	seen := make(map[string]bool) // series dedupe: name + sorted labels
	var lineNo int
	for _, line := range strings.Split(string(data), "\n") {
		lineNo++
		if line == "" {
			continue
		}
		if strings.HasPrefix(line, "#") {
			kind, name, rest, err := parseComment(line)
			if err != nil {
				return nil, fmt.Errorf("line %d: %w", lineNo, err)
			}
			if !validMetricName(name) {
				return nil, fmt.Errorf("line %d: invalid metric name %q", lineNo, name)
			}
			fam := families[name]
			if fam == nil {
				fam = &PromFamily{Name: name}
				families[name] = fam
			}
			switch kind {
			case "HELP":
				if fam.Help != "" {
					return nil, fmt.Errorf("line %d: duplicate HELP for %s", lineNo, name)
				}
				if rest == "" {
					return nil, fmt.Errorf("line %d: empty HELP for %s", lineNo, name)
				}
				fam.Help = rest
			case "TYPE":
				if fam.Type != "" {
					return nil, fmt.Errorf("line %d: duplicate TYPE for %s", lineNo, name)
				}
				if len(fam.Samples) > 0 {
					return nil, fmt.Errorf("line %d: TYPE for %s after its samples", lineNo, name)
				}
				switch rest {
				case "counter", "gauge", "histogram", "summary", "untyped":
					fam.Type = rest
				default:
					return nil, fmt.Errorf("line %d: unknown TYPE %q for %s", lineNo, rest, name)
				}
			}
			continue
		}
		s, err := parseSample(line)
		if err != nil {
			return nil, fmt.Errorf("line %d: %w", lineNo, err)
		}
		fam := families[familyOf(s.Name, families)]
		if fam == nil || fam.Type == "" || fam.Help == "" {
			return nil, fmt.Errorf("line %d: series %s has no preceding # HELP and # TYPE (undocumented metric)", lineNo, s.Name)
		}
		if fam.Type != "histogram" && fam.Type != "summary" && s.Name != fam.Name {
			return nil, fmt.Errorf("line %d: series %s does not match its family name %s", lineNo, s.Name, fam.Name)
		}
		key := seriesKey(s)
		if seen[key] {
			return nil, fmt.Errorf("line %d: duplicate series %s", lineNo, key)
		}
		seen[key] = true
		fam.Samples = append(fam.Samples, s)
	}
	return families, nil
}

// LintProm parses the exposition and checks the semantic rules on top:
// counters end in _total, histogram families have consistent cumulative
// buckets (ascending le, non-decreasing counts, a +Inf bucket equal to
// _count) and exactly one _sum and _count per label set.
func LintProm(data []byte) error {
	families, err := ParseProm(data)
	if err != nil {
		return err
	}
	for _, fam := range families {
		if fam.Type == "" || fam.Help == "" {
			// Declared but never sampled in full — a HELP without TYPE or
			// vice versa is a malformed family even with no samples.
			return fmt.Errorf("family %s: missing %s", fam.Name, map[bool]string{true: "# TYPE", false: "# HELP"}[fam.Type == ""])
		}
		switch fam.Type {
		case "counter":
			if !strings.HasSuffix(fam.Name, "_total") {
				return fmt.Errorf("family %s: counters must end in _total", fam.Name)
			}
			for _, s := range fam.Samples {
				if s.Value < 0 || math.IsNaN(s.Value) {
					return fmt.Errorf("family %s: counter sample %g is not a non-negative number", fam.Name, s.Value)
				}
			}
		case "histogram":
			if err := lintHistogram(fam); err != nil {
				return err
			}
		}
	}
	return nil
}

// lintHistogram checks one histogram family's cumulative consistency,
// grouped by the label set without le.
func lintHistogram(fam *PromFamily) error {
	type group struct {
		les      []float64
		cums     []uint64
		sumSeen  int
		cntSeen  int
		count    float64
		infCount float64
		infSeen  bool
	}
	groups := make(map[string]*group)
	groupOf := func(s PromSample) *group {
		parts := make([]string, 0, len(s.Labels))
		for k, v := range s.Labels {
			if k == "le" {
				continue
			}
			parts = append(parts, k+"="+v)
		}
		sort.Strings(parts)
		key := strings.Join(parts, ",")
		g := groups[key]
		if g == nil {
			g = &group{}
			groups[key] = g
		}
		return g
	}
	for _, s := range fam.Samples {
		switch s.Name {
		case fam.Name + "_bucket":
			le, ok := s.Labels["le"]
			if !ok {
				return fmt.Errorf("family %s: bucket without le label", fam.Name)
			}
			edge, err := parseLE(le)
			if err != nil {
				return fmt.Errorf("family %s: bad le %q", fam.Name, le)
			}
			g := groupOf(s)
			if math.IsInf(edge, 1) {
				g.infSeen, g.infCount = true, s.Value
			}
			g.les = append(g.les, edge)
			g.cums = append(g.cums, uint64(s.Value))
		case fam.Name + "_sum":
			groupOf(s).sumSeen++
		case fam.Name + "_count":
			g := groupOf(s)
			g.cntSeen++
			g.count = s.Value
		default:
			return fmt.Errorf("family %s: unexpected histogram series %s", fam.Name, s.Name)
		}
	}
	for key, g := range groups {
		at := fam.Name
		if key != "" {
			at += "{" + key + "}"
		}
		if g.sumSeen != 1 || g.cntSeen != 1 {
			return fmt.Errorf("%s: want exactly one _sum and _count (got %d and %d)", at, g.sumSeen, g.cntSeen)
		}
		if !g.infSeen {
			return fmt.Errorf("%s: no +Inf bucket", at)
		}
		if g.infCount != g.count {
			return fmt.Errorf("%s: +Inf bucket %g != _count %g", at, g.infCount, g.count)
		}
		for i := 1; i < len(g.les); i++ {
			if !(g.les[i] > g.les[i-1]) {
				return fmt.Errorf("%s: bucket edges not ascending (%g then %g)", at, g.les[i-1], g.les[i])
			}
			if g.cums[i] < g.cums[i-1] {
				return fmt.Errorf("%s: cumulative bucket counts decrease at le=%g", at, g.les[i])
			}
		}
	}
	return nil
}

// HistogramBuckets extracts a histogram family's cumulative (le, count)
// pairs for the label group matching want (nil matches the unlabeled
// group), sorted ascending and ready for QuantileFromBuckets.
func HistogramBuckets(fam *PromFamily, want map[string]string) (les []float64, cums []uint64) {
	for _, s := range fam.Samples {
		if s.Name != fam.Name+"_bucket" {
			continue
		}
		match := true
		for k, v := range want {
			if s.Labels[k] != v {
				match = false
				break
			}
		}
		if !match || len(s.Labels)-1 != len(want) {
			continue
		}
		edge, err := parseLE(s.Labels["le"])
		if err != nil {
			continue
		}
		les = append(les, edge)
		cums = append(cums, uint64(s.Value))
	}
	sort.Sort(&bucketSort{les, cums})
	return les, cums
}

// bucketSort co-sorts (le, cum) pairs by ascending edge.
type bucketSort struct {
	les  []float64
	cums []uint64
}

// Len implements sort.Interface.
func (b *bucketSort) Len() int { return len(b.les) }

// Less implements sort.Interface, ordering by bucket edge.
func (b *bucketSort) Less(i, j int) bool { return b.les[i] < b.les[j] }

// Swap implements sort.Interface, keeping edges and counts paired.
func (b *bucketSort) Swap(i, j int) {
	b.les[i], b.les[j] = b.les[j], b.les[i]
	b.cums[i], b.cums[j] = b.cums[j], b.cums[i]
}

// parseLE parses a bucket edge, accepting +Inf.
func parseLE(s string) (float64, error) {
	if s == "+Inf" {
		return math.Inf(1), nil
	}
	return strconv.ParseFloat(s, 64)
}

// parseComment parses a "# HELP name text" / "# TYPE name type" line.
func parseComment(line string) (kind, name, rest string, err error) {
	body, ok := strings.CutPrefix(line, "# ")
	if !ok {
		return "", "", "", fmt.Errorf("comment %q is not a # HELP or # TYPE line", line)
	}
	kind, body, ok = strings.Cut(body, " ")
	if !ok || (kind != "HELP" && kind != "TYPE") {
		return "", "", "", fmt.Errorf("comment %q is not a # HELP or # TYPE line", line)
	}
	name, rest, _ = strings.Cut(body, " ")
	if name == "" {
		return "", "", "", fmt.Errorf("%s line with no metric name", kind)
	}
	return kind, name, rest, nil
}

// parseSample parses one "name{labels} value" sample line.
func parseSample(line string) (PromSample, error) {
	s := PromSample{}
	i := strings.IndexAny(line, "{ ")
	if i < 0 {
		return s, fmt.Errorf("malformed sample %q", line)
	}
	s.Name = line[:i]
	if !validMetricName(s.Name) {
		return s, fmt.Errorf("invalid metric name %q", s.Name)
	}
	rest := line[i:]
	if rest[0] == '{' {
		end := -1
		inQuote := false
		for j := 1; j < len(rest); j++ {
			switch {
			case inQuote && rest[j] == '\\':
				j++
			case rest[j] == '"':
				inQuote = !inQuote
			case !inQuote && rest[j] == '}':
				end = j
			}
			if end >= 0 {
				break
			}
		}
		if end < 0 {
			return s, fmt.Errorf("unterminated label set in %q", line)
		}
		labels, err := parseLabels(rest[1:end])
		if err != nil {
			return s, fmt.Errorf("%w in %q", err, line)
		}
		s.Labels = labels
		rest = rest[end+1:]
	}
	rest = strings.TrimSpace(rest)
	// A trailing timestamp would be a second field; this exporter never
	// writes one, and the strict form rejects it.
	if strings.ContainsAny(rest, " \t") {
		return s, fmt.Errorf("unexpected trailing fields in %q", line)
	}
	v, err := strconv.ParseFloat(rest, 64)
	if err != nil {
		if rest == "+Inf" {
			v = math.Inf(1)
		} else if rest == "-Inf" {
			v = math.Inf(-1)
		} else {
			return s, fmt.Errorf("bad value %q", rest)
		}
	}
	s.Value = v
	return s, nil
}

// parseLabels parses `k="v",k2="v2"`.
func parseLabels(body string) (map[string]string, error) {
	out := make(map[string]string)
	for len(body) > 0 {
		eq := strings.Index(body, "=")
		if eq <= 0 {
			return nil, fmt.Errorf("malformed label pair %q", body)
		}
		name := body[:eq]
		if !validLabelName(name) {
			return nil, fmt.Errorf("invalid label name %q", name)
		}
		body = body[eq+1:]
		if len(body) == 0 || body[0] != '"' {
			return nil, fmt.Errorf("label %s value is not quoted", name)
		}
		val := strings.Builder{}
		j := 1
		for ; j < len(body); j++ {
			c := body[j]
			if c == '\\' {
				j++
				if j >= len(body) {
					return nil, fmt.Errorf("dangling escape in label %s", name)
				}
				switch body[j] {
				case '\\':
					val.WriteByte('\\')
				case '"':
					val.WriteByte('"')
				case 'n':
					val.WriteByte('\n')
				default:
					return nil, fmt.Errorf("bad escape \\%c in label %s", body[j], name)
				}
				continue
			}
			if c == '"' {
				break
			}
			val.WriteByte(c)
		}
		if j >= len(body) {
			return nil, fmt.Errorf("unterminated value for label %s", name)
		}
		if _, dup := out[name]; dup {
			return nil, fmt.Errorf("duplicate label %s", name)
		}
		out[name] = val.String()
		body = body[j+1:]
		if len(body) > 0 {
			if body[0] != ',' {
				return nil, fmt.Errorf("expected ',' between labels at %q", body)
			}
			body = body[1:]
		}
	}
	return out, nil
}

// familyOf resolves a sample name to its declared family: exact match,
// or the base name of a histogram/summary suffix.
func familyOf(name string, families map[string]*PromFamily) string {
	if f, ok := families[name]; ok && f.Type != "" {
		return name
	}
	for _, suffix := range []string{"_bucket", "_sum", "_count"} {
		if base, ok := strings.CutSuffix(name, suffix); ok {
			if f, exists := families[base]; exists && (f.Type == "histogram" || f.Type == "summary") {
				return base
			}
		}
	}
	return name
}

// seriesKey is the dedupe identity: name plus sorted labels.
func seriesKey(s PromSample) string {
	parts := make([]string, 0, len(s.Labels))
	for k, v := range s.Labels {
		parts = append(parts, k+"="+v)
	}
	sort.Strings(parts)
	return s.Name + "{" + strings.Join(parts, ",") + "}"
}

// validMetricName reports whether name matches [a-zA-Z_:][a-zA-Z0-9_:]*.
func validMetricName(name string) bool {
	if name == "" {
		return false
	}
	for i, c := range name {
		ok := c == '_' || c == ':' || (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || (i > 0 && c >= '0' && c <= '9')
		if !ok {
			return false
		}
	}
	return true
}

// validLabelName reports whether name matches [a-zA-Z_][a-zA-Z0-9_]*.
func validLabelName(name string) bool {
	if name == "" {
		return false
	}
	for i, c := range name {
		ok := c == '_' || (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || (i > 0 && c >= '0' && c <= '9')
		if !ok {
			return false
		}
	}
	return true
}
