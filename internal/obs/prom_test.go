package obs

import (
	"math"
	"math/rand"
	"strings"
	"testing"
)

func TestAppendPromRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	var h Histogram
	for i := 0; i < 5000; i++ {
		h.Record(math.Exp(rng.Float64()*8 - 8))
	}
	snap := h.Snapshot()
	b := snap.AppendProm(nil, "test_latency_seconds", "A test latency distribution.", "", true)

	fams, err := ParseProm(b)
	if err != nil {
		t.Fatalf("ParseProm rejected our own output: %v\n%s", err, b)
	}
	if err := LintProm(b); err != nil {
		t.Fatalf("LintProm rejected our own output: %v\n%s", err, b)
	}
	fam := fams["test_latency_seconds"]
	if fam == nil {
		t.Fatalf("family missing from parse; got %v", famNames(fams))
	}
	les, cums := HistogramBuckets(fam, nil)
	if len(les) == 0 {
		t.Fatal("no buckets extracted")
	}
	// Cumulative counts must be non-decreasing and end at Count.
	for i := 1; i < len(cums); i++ {
		if cums[i] < cums[i-1] {
			t.Fatalf("bucket counts not cumulative at %d: %v", i, cums)
		}
	}
	if cums[len(cums)-1] != snap.Count {
		t.Fatalf("+Inf bucket %d != count %d", cums[len(cums)-1], snap.Count)
	}
	// The scrape-side quantile must agree with the in-process one: both
	// interpolate over the same buckets, so they differ only where elision
	// re-anchoring coarsens the lower edge — stay within a bucket width.
	for _, q := range []float64{0.5, 0.9, 0.99} {
		direct := snap.Quantile(q)
		scraped := QuantileFromBuckets(les, cums, q)
		if rel := math.Abs(direct-scraped) / direct; rel > relBucketError {
			t.Errorf("q=%g: direct %g vs scraped %g (rel err %.3f)", q, direct, scraped, rel)
		}
	}
}

func famNames(fams map[string]*PromFamily) []string {
	out := make([]string, 0, len(fams))
	for n := range fams {
		out = append(out, n)
	}
	return out
}

// TestAppendPromSparse exercises the empty-run elision: two isolated
// spikes decades apart must still render a valid cumulative histogram.
func TestAppendPromSparse(t *testing.T) {
	var h Histogram
	for i := 0; i < 10; i++ {
		h.Record(1e-5)
		h.Record(42)
	}
	snap := h.Snapshot()
	b := snap.AppendProm(nil, "sparse_seconds", "Sparse distribution.", "", true)
	if err := LintProm(b); err != nil {
		t.Fatalf("sparse render fails lint: %v\n%s", err, b)
	}
	fams, err := ParseProm(b)
	if err != nil {
		t.Fatalf("sparse render fails parse: %v", err)
	}
	les, cums := HistogramBuckets(fams["sparse_seconds"], nil)
	// Elision must have dropped the long empty runs: far fewer rendered
	// buckets than the 128 in the scheme.
	if len(les) > 20 {
		t.Errorf("elision ineffective: %d buckets rendered", len(les))
	}
	p50 := QuantileFromBuckets(les, cums, 0.50)
	if p50 <= 0 {
		t.Errorf("sparse p50 = %g", p50)
	}
	// Median of {10×1e-5, 10×42} lands at the low spike.
	if p50 > 1e-3 {
		t.Errorf("sparse p50 = %g, want near 1e-5", p50)
	}
	p99 := QuantileFromBuckets(les, cums, 0.99)
	if p99 < 30 || p99 > 60 {
		t.Errorf("sparse p99 = %g, want near 42", p99)
	}
}

func TestAppendPromLabels(t *testing.T) {
	var h Histogram
	h.Record(0.1)
	snap := h.Snapshot()
	b := snap.AppendProm(nil, "labeled_seconds", "Labeled distribution.", `shard="3"`, true)
	// Second labeled series in the same family, no header repeat.
	b = snap.AppendProm(b, "labeled_seconds", "Labeled distribution.", `shard="7"`, false)
	if err := LintProm(b); err != nil {
		t.Fatalf("labeled render fails lint: %v\n%s", err, b)
	}
	if n := strings.Count(string(b), "# HELP labeled_seconds"); n != 1 {
		t.Fatalf("HELP emitted %d times, want 1", n)
	}
	fams, err := ParseProm(b)
	if err != nil {
		t.Fatal(err)
	}
	fam := fams["labeled_seconds"]
	for _, shard := range []string{"3", "7"} {
		les, cums := HistogramBuckets(fam, map[string]string{"shard": shard})
		if len(les) == 0 || cums[len(cums)-1] != 1 {
			t.Errorf("shard %s: buckets %v cums %v", shard, les, cums)
		}
	}
	// The unlabeled group must be empty — every sample carries a shard.
	if les, _ := HistogramBuckets(fam, nil); len(les) != 0 {
		t.Errorf("unlabeled group unexpectedly non-empty: %v", les)
	}
}

func TestParsePromStrict(t *testing.T) {
	cases := []struct {
		name string
		in   string
	}{
		{"sample without HELP", "foo_total 3\n"},
		{"TYPE without HELP", "# TYPE foo_total counter\nfoo_total 3\n"},
		{"HELP without TYPE", "# HELP foo_total Docs.\nfoo_total 3\n"},
		{"bad value", "# HELP foo Docs.\n# TYPE foo gauge\nfoo abc\n"},
		{"unbalanced label quote", "# HELP foo Docs.\n# TYPE foo gauge\nfoo{a=\"b} 1\n"},
		{"garbage line", "# HELP foo Docs.\n# TYPE foo gauge\nfoo 1\nnot a metric line!\n"},
	}
	for _, c := range cases {
		if _, err := ParseProm([]byte(c.in)); err == nil {
			t.Errorf("%s: ParseProm accepted invalid exposition:\n%s", c.name, c.in)
		}
	}
	// A well-formed doc passes.
	good := "# HELP foo_total Docs.\n# TYPE foo_total counter\nfoo_total 3\n"
	if _, err := ParseProm([]byte(good)); err != nil {
		t.Errorf("ParseProm rejected valid exposition: %v", err)
	}
}

func TestQuantileFromBucketsEdges(t *testing.T) {
	if got := QuantileFromBuckets(nil, nil, 0.5); got != 0 {
		t.Errorf("empty buckets quantile = %g", got)
	}
	// All mass in +Inf: report the last finite edge.
	les := []float64{0.1, 0.2, math.Inf(1)}
	cums := []uint64{0, 0, 5}
	if got := QuantileFromBuckets(les, cums, 0.99); got != 0.2 {
		t.Errorf("all-overflow quantile = %g, want 0.2", got)
	}
	// Single finite bucket: interpolates from zero.
	les2 := []float64{1, math.Inf(1)}
	cums2 := []uint64{10, 10}
	got := QuantileFromBuckets(les2, cums2, 0.5)
	if got <= 0 || got > 1 {
		t.Errorf("single-bucket p50 = %g, want in (0, 1]", got)
	}
	// Mismatched slice lengths are a caller bug, not a panic.
	if got := QuantileFromBuckets([]float64{1, 2}, []uint64{3}, 0.5); got != 0 {
		t.Errorf("mismatched lengths quantile = %g, want 0", got)
	}
	// A declared but empty histogram (all-zero cumulatives) has no quantile.
	if got := QuantileFromBuckets(les, []uint64{0, 0, 0}, 0.5); got != 0 {
		t.Errorf("zero-total quantile = %g, want 0", got)
	}
	// Rank landing exactly on a cumulative count interpolates to that
	// bucket's own edge — the bucket boundary, not past it.
	les3 := []float64{1, 2, math.Inf(1)}
	cums3 := []uint64{5, 10, 10}
	if got := QuantileFromBuckets(les3, cums3, 0.5); got != 1 {
		t.Errorf("exact-edge p50 = %g, want 1", got)
	}
	// Out-of-range q clamps: below zero to the distribution's floor,
	// above one to the last finite edge.
	if got := QuantileFromBuckets(les3, cums3, -3); got != 0 {
		t.Errorf("q<0 quantile = %g, want 0", got)
	}
	if got := QuantileFromBuckets(les3, cums3, 7); got != 2 {
		t.Errorf("q>1 quantile = %g, want 2", got)
	}
	// All mass in a lone +Inf bucket: there is no finite edge to report,
	// and the reconstruction says so rather than inventing one.
	if got := QuantileFromBuckets([]float64{math.Inf(1)}, []uint64{5}, 0.5); !math.IsInf(got, 1) {
		t.Errorf("lone-overflow quantile = %g, want +Inf", got)
	}
}
