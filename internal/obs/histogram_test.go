package obs

import (
	"math"
	"math/rand"
	"sort"
	"sync"
	"testing"
)

// relBucketError is the scheme's worst-case relative quantile error: one
// bucket spans a factor of 2^(1/4), so an interpolated quantile can miss
// the true value by at most that ratio. The tests allow a hair more for
// floating-point slop at the edges.
const relBucketError = 0.20

func TestBucketIndexEdges(t *testing.T) {
	if got := bucketIndex(0); got != 0 {
		t.Errorf("bucketIndex(0) = %d, want 0", got)
	}
	if got := bucketIndex(-1); got != 0 {
		t.Errorf("bucketIndex(-1) = %d, want 0", got)
	}
	if got := bucketIndex(1e-12); got != 0 {
		t.Errorf("bucketIndex(1e-12) = %d, want 0 (tiny values clamp to the first bucket)", got)
	}
	if got := bucketIndex(math.MaxFloat64); got != numBuckets {
		t.Errorf("bucketIndex(huge) = %d, want %d (overflow bucket)", got, numBuckets)
	}
	// Every exact edge must land in the bucket it bounds (inclusive upper),
	// give or take the one-off floating slop the scheme tolerates.
	for i := 0; i < numBuckets; i++ {
		got := bucketIndex(boundaries[i])
		if got != i && got != i+1 {
			t.Fatalf("bucketIndex(boundaries[%d]=%g) = %d, want %d or %d", i, boundaries[i], got, i, i+1)
		}
		// Just above the edge must move past bucket i.
		above := boundaries[i] * (1 + 1e-9)
		if got := bucketIndex(above); got < i {
			t.Fatalf("bucketIndex(just above edge %d) = %d, went backwards", i, got)
		}
	}
	// Values within a bucket's span must land in it.
	for _, v := range []float64{2e-6, 1e-3, 0.5, 1, 10, 100} {
		i := bucketIndex(v)
		if i >= numBuckets {
			t.Fatalf("bucketIndex(%g) overflowed", v)
		}
		lo := 0.0
		if i > 0 {
			lo = boundaries[i-1]
		}
		if v <= lo || v > boundaries[i]*(1+1e-12) {
			t.Errorf("bucketIndex(%g) = %d, but bucket spans (%g, %g]", v, i, lo, boundaries[i])
		}
	}
}

// trueQuantile is the reference: the empirical quantile of the raw stream.
func trueQuantile(sorted []float64, q float64) float64 {
	if len(sorted) == 0 {
		return 0
	}
	idx := int(math.Ceil(q*float64(len(sorted)))) - 1
	if idx < 0 {
		idx = 0
	}
	if idx >= len(sorted) {
		idx = len(sorted) - 1
	}
	return sorted[idx]
}

func TestQuantileWithinBucketError(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	var h Histogram
	vals := make([]float64, 0, 20000)
	for i := 0; i < 20000; i++ {
		// Log-uniform over ~6 decades — exercises many octaves.
		v := math.Exp(rng.Float64()*14 - 9) // e^-9 .. e^5 seconds
		h.Record(v)
		vals = append(vals, v)
	}
	sort.Float64s(vals)
	snap := h.Snapshot()
	for _, q := range []float64{0.5, 0.9, 0.99, 0.999} {
		got := snap.Quantile(q)
		want := trueQuantile(vals, q)
		if rel := math.Abs(got-want) / want; rel > relBucketError {
			t.Errorf("q=%g: histogram %g vs true %g (rel err %.3f > %.2f)", q, got, want, rel, relBucketError)
		}
	}
	if math.Abs(snap.Mean()-mean(vals))/mean(vals) > 1e-9 {
		t.Errorf("mean drifted: %g vs %g (sum is exact, not bucketed)", snap.Mean(), mean(vals))
	}
}

func mean(vals []float64) float64 {
	var s float64
	for _, v := range vals {
		s += v
	}
	return s / float64(len(vals))
}

// TestMergeQuantileProperty is the merge law the shard → gateway
// aggregation rests on: merge(a, b) is counter-identical to a histogram
// fed both streams, so merged quantiles equal combined-stream quantiles
// exactly at the counter level — and match the true combined stream
// within the bucket error.
func TestMergeQuantileProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	var a, b, combined Histogram
	var all []float64
	for i := 0; i < 10000; i++ {
		// Disjoint-ish scales per shard: a fast shard and a slow shard.
		va := math.Exp(rng.Float64()*6 - 10)
		vb := math.Exp(rng.Float64()*6 - 6)
		a.Record(va)
		b.Record(vb)
		combined.Record(va)
		combined.Record(vb)
		all = append(all, va, vb)
	}
	merged := a.Snapshot()
	merged.Merge(b.Snapshot())
	want := combined.Snapshot()
	if merged.Counts != want.Counts || merged.Over != want.Over || merged.Count != want.Count {
		t.Fatalf("merge(a,b) is not counter-identical to the combined stream:\nmerged   %+v\ncombined %+v",
			mergedSummary(merged), mergedSummary(want))
	}
	// Sum is a float accumulated in different orders — equal up to rounding.
	if math.Abs(merged.Sum-want.Sum)/want.Sum > 1e-12 {
		t.Fatalf("merged sum %v vs combined %v", merged.Sum, want.Sum)
	}
	sort.Float64s(all)
	for _, q := range []float64{0.5, 0.9, 0.99} {
		got := merged.Quantile(q)
		tq := trueQuantile(all, q)
		if rel := math.Abs(got-tq) / tq; rel > relBucketError {
			t.Errorf("merged q=%g: %g vs true %g (rel err %.3f)", q, got, tq, rel)
		}
	}
}

func mergedSummary(s Snapshot) map[string]interface{} {
	occupied := 0
	for _, c := range s.Counts {
		if c > 0 {
			occupied++
		}
	}
	return map[string]interface{}{"count": s.Count, "sum": s.Sum, "over": s.Over, "occupied": occupied}
}

func TestMergeEmptyAndOverflow(t *testing.T) {
	var a Histogram
	a.Record(1e9) // way past the last edge
	a.Record(0.5)
	s := a.Snapshot()
	if s.Over != 1 || s.Count != 2 {
		t.Fatalf("overflow accounting: over=%d count=%d", s.Over, s.Count)
	}
	var empty Snapshot
	s.Merge(empty)
	if s.Count != 2 {
		t.Fatalf("merging empty changed count: %d", s.Count)
	}
	empty.Merge(s)
	if empty.Count != 2 || empty.Over != 1 {
		t.Fatalf("merge into empty lost counters: %+v", mergedSummary(empty))
	}
	// All mass past the edge: quantile reports the last finite edge.
	var over Histogram
	over.Record(1e9)
	os := over.Snapshot()
	if got := os.Quantile(0.99); got != boundaries[numBuckets-1] {
		t.Errorf("overflow-only quantile = %g, want last edge %g", got, boundaries[numBuckets-1])
	}
}

func TestNilHistogram(t *testing.T) {
	var h *Histogram
	h.Record(1) // must not panic
	s := h.Snapshot()
	if s.Count != 0 || s.Quantile(0.5) != 0 || s.Mean() != 0 {
		t.Fatalf("nil histogram not empty: %+v", mergedSummary(s))
	}
}

// TestHistogramConcurrency hammers the hot-path recorder from many
// goroutines while a reader snapshots — run under -race this is the
// concurrency proof for the lock-free counters.
func TestHistogramConcurrency(t *testing.T) {
	var h Histogram
	const goroutines = 8
	const perG = 20000
	stop := make(chan struct{})
	var readers sync.WaitGroup
	readers.Add(1)
	go func() { // concurrent reader
		defer readers.Done()
		for {
			select {
			case <-stop:
				return
			default:
				s := h.Snapshot()
				_ = s.Quantile(0.99)
			}
		}
	}()
	var writers sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		writers.Add(1)
		go func(g int) {
			defer writers.Done()
			rng := rand.New(rand.NewSource(int64(g)))
			for i := 0; i < perG; i++ {
				h.Record(math.Exp(rng.Float64()*10 - 12))
			}
		}(g)
	}
	writers.Wait()
	close(stop)
	readers.Wait()
	s := h.Snapshot()
	if s.Count != goroutines*perG {
		t.Fatalf("lost observations: count=%d want %d", s.Count, goroutines*perG)
	}
	var bucketTotal uint64
	for _, c := range s.Counts {
		bucketTotal += c
	}
	if bucketTotal+s.Over != s.Count {
		t.Fatalf("bucket sum %d + over %d != count %d", bucketTotal, s.Over, s.Count)
	}
}
