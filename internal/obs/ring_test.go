package obs

import (
	"math/rand"
	"sort"
	"testing"
	"time"
)

func rt(index int64, total time.Duration) RoundTrace {
	return RoundTrace{Index: index, Total: total}
}

func TestRoundRingRecentOrder(t *testing.T) {
	r := NewRoundRing(8, 4)
	for i := int64(0); i < 20; i++ {
		r.Record(rt(i, time.Duration(i)*time.Millisecond))
	}
	recent := r.Recent(0)
	if len(recent) != 8 {
		t.Fatalf("ring retained %d, want 8", len(recent))
	}
	// Newest first: 19, 18, ... 12.
	for i, tr := range recent {
		if want := int64(19 - i); tr.Index != want {
			t.Fatalf("recent[%d].Index = %d, want %d (got %v)", i, tr.Index, want, indices(recent))
		}
	}
	if got := r.Recent(3); len(got) != 3 || got[0].Index != 19 || got[2].Index != 17 {
		t.Fatalf("Recent(3) = %v", indices(got))
	}
	// Before the ring wraps, Recent must also work.
	small := NewRoundRing(8, 4)
	small.Record(rt(0, 0))
	small.Record(rt(1, 0))
	if got := small.Recent(0); len(got) != 2 || got[0].Index != 1 || got[1].Index != 0 {
		t.Fatalf("unwrapped Recent = %v", indices(got))
	}
}

func TestRoundRingSlowest(t *testing.T) {
	r := NewRoundRing(16, 4)
	rng := rand.New(rand.NewSource(5))
	var totals []time.Duration
	for i := int64(0); i < 500; i++ {
		d := time.Duration(rng.Intn(1_000_000)) * time.Microsecond
		totals = append(totals, d)
		r.Record(rt(i, d))
	}
	sort.Slice(totals, func(i, j int) bool { return totals[i] > totals[j] })
	slow := r.Slowest()
	if len(slow) != 4 {
		t.Fatalf("kept %d exemplars, want 4", len(slow))
	}
	for i, tr := range slow {
		if tr.Total != totals[i] {
			t.Fatalf("slowest[%d].Total = %v, want %v (true top-4 %v)", i, tr.Total, totals[i], totals[:4])
		}
	}
}

func TestNilRing(t *testing.T) {
	var r *RoundRing
	r.Record(rt(0, time.Second)) // must not panic
	if r.Recent(5) != nil || r.Slowest() != nil {
		t.Fatal("nil ring returned traces")
	}
}

func indices(trs []RoundTrace) []int64 {
	out := make([]int64, len(trs))
	for i, tr := range trs {
		out[i] = tr.Index
	}
	return out
}

func TestJobTracerSampling(t *testing.T) {
	jt := NewJobTracer(4, 100)
	if jt.SampleEvery() != 4 {
		t.Fatalf("SampleEvery = %d", jt.SampleEvery())
	}
	wall := time.Unix(100, 0)
	var sampled []int
	for id := 0; id < 16; id++ {
		if jt.Accepted(id, wall, wall) {
			sampled = append(sampled, id)
		}
	}
	// Deterministic stride: ordinals 0, 4, 8, 12.
	want := []int{0, 4, 8, 12}
	if len(sampled) != len(want) {
		t.Fatalf("sampled %v, want %v", sampled, want)
	}
	for i := range want {
		if sampled[i] != want[i] {
			t.Fatalf("sampled %v, want %v", sampled, want)
		}
	}
	if _, ok := jt.Get(1); ok {
		t.Fatal("unsampled job has a trace")
	}
	if _, ok := jt.Get(4); !ok {
		t.Fatal("sampled job has no trace")
	}
}

func TestJobTracerLifecycle(t *testing.T) {
	jt := NewJobTracer(1, 100)
	wall := time.Unix(100, 0)
	sim := time.Unix(0, 0)
	jt.Accepted(7, wall, sim)
	jt.Batched(7, 3, sim.Add(time.Minute), wall.Add(time.Millisecond))
	// Two re-offers before the decision.
	jt.Batched(7, 4, sim.Add(2*time.Minute), wall.Add(2*time.Millisecond))
	jt.Batched(7, 5, sim.Add(3*time.Minute), wall.Add(3*time.Millisecond))
	jt.Decided(7, 5, wall.Add(3*time.Millisecond), "eu-west", sim.Add(3*time.Minute), sim.Add(time.Hour))
	tr, ok := jt.Get(7)
	if !ok || !tr.Done {
		t.Fatalf("trace not completed: %+v ok=%v", tr, ok)
	}
	if tr.BatchedRound != 3 || tr.DecidedRound != 5 {
		t.Fatalf("round stamps: batched %d decided %d", tr.BatchedRound, tr.DecidedRound)
	}
	if tr.DeferredRounds != 2 {
		t.Fatalf("DeferredRounds = %d, want 2", tr.DeferredRounds)
	}
	if tr.Region != "eu-west" || tr.StartSim.IsZero() || tr.FinishSim.IsZero() {
		t.Fatalf("placement stamps missing: %+v", tr)
	}
	// Post-decision Batched calls are ignored.
	jt.Batched(7, 6, sim, wall)
	tr2, _ := jt.Get(7)
	if tr2.DeferredRounds != 2 {
		t.Fatalf("Done trace mutated by late Batched: %+v", tr2)
	}
}

// TestJobTracerDeferredFromGap covers the WAL-batched path where Batched
// fires once: the round-index gap stands in for explicit re-offer counts.
func TestJobTracerDeferredFromGap(t *testing.T) {
	jt := NewJobTracer(1, 100)
	wall := time.Unix(100, 0)
	jt.Accepted(1, wall, wall)
	jt.Batched(1, 10, wall, wall)
	jt.Decided(1, 13, wall, "us-east", wall, wall)
	tr, _ := jt.Get(1)
	if tr.DeferredRounds != 3 {
		t.Fatalf("gap-derived DeferredRounds = %d, want 3", tr.DeferredRounds)
	}
}

func TestJobTracerFIFOEviction(t *testing.T) {
	jt := NewJobTracer(1, 3)
	wall := time.Unix(100, 0)
	for id := 0; id < 5; id++ {
		jt.Accepted(id, wall, wall)
	}
	for id := 0; id < 2; id++ {
		if _, ok := jt.Get(id); ok {
			t.Errorf("job %d should have been evicted", id)
		}
	}
	for id := 2; id < 5; id++ {
		if _, ok := jt.Get(id); !ok {
			t.Errorf("job %d evicted too early", id)
		}
	}
}

func TestNilJobTracer(t *testing.T) {
	var jt *JobTracer
	if jt.Accepted(1, time.Time{}, time.Time{}) {
		t.Fatal("nil tracer sampled a job")
	}
	jt.Batched(1, 0, time.Time{}, time.Time{})
	jt.Decided(1, 0, time.Time{}, "", time.Time{}, time.Time{})
	if _, ok := jt.Get(1); ok {
		t.Fatal("nil tracer returned a trace")
	}
	if jt.SampleEvery() != 0 {
		t.Fatal("nil tracer SampleEvery != 0")
	}
}

func TestStageString(t *testing.T) {
	want := []string{"ingest", "solve", "wal_append", "wal_fsync", "snapshot", "publish"}
	for st := Stage(0); st < NumStages; st++ {
		if st.String() != want[st] {
			t.Errorf("Stage(%d).String() = %q, want %q", st, st.String(), want[st])
		}
	}
	var rt RoundTrace
	rt.Stages[StageSolve] = time.Millisecond
	bd := rt.StageBreakdown()
	if len(bd) != int(NumStages) || bd["solve"] != time.Millisecond {
		t.Errorf("StageBreakdown = %v", bd)
	}
}
