package obs

import (
	"fmt"
	"strconv"
)

// AppendProm renders the snapshot as a Prometheus histogram family —
// cumulative `name_bucket{le="..."}` series, `name_sum`, and
// `name_count` — appended to b. labels is either empty or a
// comma-joined `k="v"` list spliced into every series (the le label is
// appended after it). Empty buckets between occupied ones are elided
// (each le series is an independent time series, so a sparse set is
// valid); the +Inf bucket always appears and equals _count.
//
// When withHeader is true the family's # HELP and # TYPE lines are
// emitted first — callers rendering several labeled snapshots of one
// family (per-shard series) emit the header once and pass false after.
func (s *Snapshot) AppendProm(b []byte, name, help, labels string, withHeader bool) []byte {
	if withHeader {
		b = append(b, fmt.Sprintf("# HELP %s %s\n# TYPE %s histogram\n", name, help, name)...)
	}
	series := func(suffix, extraLabel string, v string) []byte {
		b := append([]byte(nil), name...)
		b = append(b, suffix...)
		if labels != "" || extraLabel != "" {
			b = append(b, '{')
			b = append(b, labels...)
			if labels != "" && extraLabel != "" {
				b = append(b, ',')
			}
			b = append(b, extraLabel...)
			b = append(b, '}')
		}
		b = append(b, ' ')
		b = append(b, v...)
		b = append(b, '\n')
		return b
	}
	var cum uint64
	prevEmitted := false
	for i, c := range s.Counts {
		if c == 0 {
			prevEmitted = false
			continue
		}
		if !prevEmitted && i > 0 && cum > 0 {
			// Re-anchor after an elided run so the scraper sees the
			// cumulative floor just below this occupied bucket.
			b = append(b, series("_bucket", fmt.Sprintf("le=%q", formatLE(boundaries[i-1])), strconv.FormatUint(cum, 10))...)
		}
		cum += c
		b = append(b, series("_bucket", fmt.Sprintf("le=%q", formatLE(boundaries[i])), strconv.FormatUint(cum, 10))...)
		prevEmitted = true
	}
	b = append(b, series("_bucket", `le="+Inf"`, strconv.FormatUint(s.Count, 10))...)
	b = append(b, series("_sum", "", strconv.FormatFloat(s.Sum, 'g', -1, 64))...)
	b = append(b, series("_count", "", strconv.FormatUint(s.Count, 10))...)
	return b
}

// formatLE formats a bucket edge the way Prometheus clients do: shortest
// float form, stable across renders so every scrape names identical
// series.
func formatLE(v float64) string { return strconv.FormatFloat(v, 'g', -1, 64) }

// QuantileFromBuckets estimates the q-quantile from parsed cumulative
// histogram buckets — the scrape-side counterpart of Snapshot.Quantile,
// used by loadgen on a target's /metrics output. les must be ascending
// upper edges with cumulative counts cums (the +Inf bucket last, its le
// math.Inf(1)); interpolation within the holding bucket is linear.
func QuantileFromBuckets(les []float64, cums []uint64, q float64) float64 {
	if len(les) == 0 || len(les) != len(cums) {
		return 0
	}
	total := cums[len(cums)-1]
	if total == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	rank := q * float64(total)
	var prevCum uint64
	var prevLE float64
	for i, cum := range cums {
		if float64(cum) >= rank && cum > prevCum {
			hi := les[i]
			if i == len(les)-1 && len(les) > 1 {
				// +Inf bucket: report the last finite edge.
				return prevLE
			}
			frac := (rank - float64(prevCum)) / float64(cum-prevCum)
			if frac < 0 {
				frac = 0
			}
			return prevLE + (hi-prevLE)*frac
		}
		prevCum, prevLE = cum, les[i]
	}
	return prevLE
}
