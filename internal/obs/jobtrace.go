package obs

import (
	"sync"
	"time"
)

// JobTrace is one sampled job's lifecycle: every stamp a placement
// passes through from acceptance to its first simulated service instant.
// Wall stamps measure the serving stack; sim stamps locate the job on
// the simulated clock the decisions are made against.
type JobTrace struct {
	ID int `json:"id"`
	// AcceptedWall is when Submit acknowledged the job; SubmitSim its
	// arrival instant on the simulated clock.
	AcceptedWall time.Time `json:"accepted_wall"`
	SubmitSim    time.Time `json:"submit_sim"`
	// BatchedRound/BatchedSim/BatchedWall stamp the first round that
	// offered the job to the scheduler (zero until then).
	BatchedRound int64     `json:"batched_round"`
	BatchedSim   time.Time `json:"batched_sim,omitzero"`
	BatchedWall  time.Time `json:"batched_wall,omitzero"`
	// DecidedRound/DecidedWall stamp the round that placed the job;
	// DeferredRounds counts the rounds that offered it without placing.
	DecidedRound   int64     `json:"decided_round"`
	DecidedWall    time.Time `json:"decided_wall,omitzero"`
	DeferredRounds int       `json:"deferred_rounds"`
	// Region/StartSim/FinishSim are the placement (first-served is
	// StartSim: when a simulated server begins executing the job).
	Region    string    `json:"region,omitempty"`
	StartSim  time.Time `json:"start_sim,omitzero"`
	FinishSim time.Time `json:"finish_sim,omitzero"`
	// Done marks a completed trace (decided); an undecided trace is a
	// job still queued, or abandoned at shutdown.
	Done bool `json:"done"`
}

// JobTracer samples every Nth accepted job and records its lifecycle in
// a bounded FIFO-evicted index. Sampling is a deterministic counter —
// no RNG, no clock — so enabling it cannot perturb scheduling, and a
// given workload samples the same ordinal positions every run. All
// methods are cheap map operations; the tracer is called under the
// server's round lock, so a plain mutex only guards the HTTP reader.
//
// A nil *JobTracer ignores every call and reports no traces.
type JobTracer struct {
	mu     sync.Mutex
	every  int
	cap    int
	n      uint64 // accepted jobs seen (sampled when n % every == 0)
	traces map[int]*JobTrace
	fifo   []int
}

// NewJobTracer samples one of every `every` accepted jobs, retaining at
// most cap traces (defaults 64 and 4096 when non-positive; every == 1
// traces every job).
func NewJobTracer(every, cap int) *JobTracer {
	if every <= 0 {
		every = 64
	}
	if cap <= 0 {
		cap = 4096
	}
	return &JobTracer{every: every, cap: cap, traces: make(map[int]*JobTrace)}
}

// Accepted stamps a job's acceptance, sampling every Nth call. Returns
// whether the job was sampled.
func (t *JobTracer) Accepted(id int, wall time.Time, submitSim time.Time) bool {
	if t == nil {
		return false
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	sampled := t.n%uint64(t.every) == 0
	t.n++
	if !sampled {
		return false
	}
	if len(t.fifo) >= t.cap {
		delete(t.traces, t.fifo[0])
		t.fifo = t.fifo[1:]
	}
	t.traces[id] = &JobTrace{ID: id, AcceptedWall: wall, SubmitSim: submitSim}
	t.fifo = append(t.fifo, id)
	return true
}

// Batched stamps a sampled job's first offer to the scheduler and counts
// re-offers of an already-batched job as deferrals. Unsampled ids are
// ignored.
func (t *JobTracer) Batched(id int, round int64, sim, wall time.Time) {
	if t == nil {
		return
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	jt, ok := t.traces[id]
	if !ok || jt.Done {
		return
	}
	if jt.BatchedWall.IsZero() {
		jt.BatchedRound, jt.BatchedSim, jt.BatchedWall = round, sim, wall
		return
	}
	jt.DeferredRounds++
}

// Decided completes a sampled job's trace with its placement. Unsampled
// ids are ignored.
func (t *JobTracer) Decided(id int, round int64, wall time.Time, region string, start, finish time.Time) {
	if t == nil {
		return
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	jt, ok := t.traces[id]
	if !ok {
		return
	}
	jt.DecidedRound, jt.DecidedWall = round, wall
	jt.Region, jt.StartSim, jt.FinishSim = region, start, finish
	if jt.DeferredRounds == 0 && !jt.BatchedWall.IsZero() && round > jt.BatchedRound {
		// Rounds fire consecutively while jobs are pending, so the index
		// gap is the number of rounds that re-offered the job undecided.
		jt.DeferredRounds = int(round - jt.BatchedRound)
	}
	jt.Done = true
}

// Get returns a copy of the trace for id, if the job was sampled and
// its trace has not been evicted.
func (t *JobTracer) Get(id int) (JobTrace, bool) {
	if t == nil {
		return JobTrace{}, false
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	jt, ok := t.traces[id]
	if !ok {
		return JobTrace{}, false
	}
	return *jt, true
}

// SampleEvery reports the sampling stride (0 for a nil tracer).
func (t *JobTracer) SampleEvery() int {
	if t == nil {
		return 0
	}
	return t.every
}
